"""The placeholder table.

When a manager overrules the kernel — the kernel suggested candidate A, the
manager gave up B instead — LRU-SP records a *placeholder* for B pointing at
A.  If B is missed while the placeholder lives, A becomes the replacement
candidate: the manager that guessed wrong pays with one of its own blocks,
and the kernel learns the decision was a mistake (``placeholder_used``).

Lifecycle (these rules are enforced here and exercised by property tests):

* created on overrule, keyed by the replaced block's id;
* consumed by the next miss on the replaced block (if the kept block is
  still resident);
* dropped when the replaced block re-enters the cache by another path, or
  when the kept block leaves the cache;
* bounded per manager — the paper's kernel "imposes a limit on kernel
  resources consumed by these data structures"; the oldest placeholder of
  the over-quota manager is discarded.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set

from repro.core.blocks import BlockId, CacheBlock


class PlaceholderEntry:
    """One placeholder: replaced block id → the block that was kept."""

    __slots__ = ("missing_id", "kept", "manager_pid")

    def __init__(self, missing_id: BlockId, kept: CacheBlock, manager_pid: int) -> None:
        self.missing_id = missing_id
        self.kept = kept
        self.manager_pid = manager_pid


class PlaceholderTable:
    """All placeholders in the kernel, with per-manager quotas."""

    def __init__(self, per_manager_limit: int = 4096) -> None:
        if per_manager_limit < 1:
            raise ValueError("per-manager placeholder limit must be >= 1")
        self.per_manager_limit = per_manager_limit
        self._by_missing: Dict[BlockId, PlaceholderEntry] = {}
        self._by_kept: Dict[CacheBlock, Set[BlockId]] = {}
        # Insertion-ordered per-manager index, used for quota eviction.
        self._by_manager: Dict[int, "OrderedDict[BlockId, None]"] = {}
        self.created = 0
        self.consumed = 0
        self.discarded = 0

    def __len__(self) -> int:
        return len(self._by_missing)

    def __contains__(self, missing_id: BlockId) -> bool:
        return missing_id in self._by_missing

    def count_for(self, manager_pid: int) -> int:
        """Live placeholders charged to one manager."""
        return len(self._by_manager.get(manager_pid, ()))

    def add(self, missing_id: BlockId, kept: CacheBlock, manager_pid: int) -> None:
        """Record that ``manager_pid`` replaced ``missing_id`` keeping ``kept``."""
        if missing_id in self._by_missing:
            # The block was replaced again before its old placeholder fired;
            # the newer decision supersedes the stale one.  The superseded
            # entry counts as discarded, so every placeholder ever created
            # is accounted for exactly once (consumed or discarded).
            self._drop(missing_id)
            self.discarded += 1
        per_manager = self._by_manager.setdefault(manager_pid, OrderedDict())
        if len(per_manager) >= self.per_manager_limit:
            oldest, _ = per_manager.popitem(last=False)
            self._drop(oldest, already_unindexed_from=manager_pid)
            self.discarded += 1
        entry = PlaceholderEntry(missing_id, kept, manager_pid)
        self._by_missing[missing_id] = entry
        self._by_kept.setdefault(kept, set()).add(missing_id)
        per_manager[missing_id] = None
        self.created += 1

    def consume(self, missing_id: BlockId) -> Optional[PlaceholderEntry]:
        """A miss occurred on ``missing_id``: pop and return its placeholder.

        Returns None if there is none, or if the kept block has already left
        the cache (the entry is dropped in that case — it can never fire).
        The caller decides whether the kept block is usable as a candidate
        (e.g. not in-flight).
        """
        entry = self._by_missing.get(missing_id)
        if entry is None:
            return None
        self._drop(missing_id)
        if not entry.kept.resident:
            self.discarded += 1
            return None
        self.consumed += 1
        return entry

    def drop_for_missing(self, missing_id: BlockId) -> bool:
        """The replaced block re-entered the cache: its placeholder dies."""
        if missing_id not in self._by_missing:
            return False
        self._drop(missing_id)
        self.discarded += 1
        return True

    def drop_for_kept(self, kept: CacheBlock) -> int:
        """The kept block left the cache: every placeholder at it dies."""
        ids = self._by_kept.pop(kept, None)
        if not ids:
            return 0
        for missing_id in list(ids):
            entry = self._by_missing.pop(missing_id, None)
            if entry is None:
                continue
            per_manager = self._by_manager.get(entry.manager_pid)
            if per_manager is not None:
                per_manager.pop(missing_id, None)
            self.discarded += 1
        return len(ids)

    def clear(self) -> None:
        self.discarded += len(self._by_missing)
        self._by_missing.clear()
        self._by_kept.clear()
        self._by_manager.clear()

    # -- internals ----------------------------------------------------------

    def _drop(self, missing_id: BlockId, already_unindexed_from: Optional[int] = None) -> None:
        entry = self._by_missing.pop(missing_id, None)
        if entry is None:
            return
        kept_set = self._by_kept.get(entry.kept)
        if kept_set is not None:
            kept_set.discard(missing_id)
            if not kept_set:
                del self._by_kept[entry.kept]
        if entry.manager_pid != already_unindexed_from:
            per_manager = self._by_manager.get(entry.manager_pid)
            if per_manager is not None:
                per_manager.pop(missing_id, None)
