"""Global allocation policies.

The kernel's "global replacement" policy in two-level replacement "is
actually not a replacement policy at all … but rather a global *allocation*
policy" — it only decides which process gives up a block.  The paper studies
a family of four, all built from one LRU list plus optional features:

================  =======  ========  ============
policy            consult  swapping  placeholders
================  =======  ========  ============
GLOBAL_LRU        no       —         —             (the original kernel)
ALLOC_LRU         yes      no        no            (Section 6.1 strawman)
LRU_S             yes      yes       no            ("unprotected" in Table 1)
LRU_SP            yes      yes       yes           (the paper's policy)
================  =======  ========  ============

``consult`` — ask the candidate block's manager for an alternative;
``swapping`` — exchange candidate/alternative positions on the global list
so a smart manager is not penalised for overruling;
``placeholders`` — remember overrules so a foolish manager pays for its own
mistakes instead of draining other processes' allocations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AllocationPolicy:
    """One point in the allocation-policy design space."""

    name: str
    consult: bool
    swapping: bool
    placeholders: bool

    def __post_init__(self) -> None:
        if not self.consult and (self.swapping or self.placeholders):
            raise ValueError("swapping/placeholders are meaningless without consultation")

    @property
    def features(self) -> tuple:
        """The enabled feature names, e.g. ``('consult', 'swapping')`` —
        used by diagnostics (the sanitizer's violation messages) and docs."""
        return tuple(
            name
            for name, on in (
                ("consult", self.consult),
                ("swapping", self.swapping),
                ("placeholders", self.placeholders),
            )
            if on
        )

    def __str__(self) -> str:
        return self.name


GLOBAL_LRU = AllocationPolicy("global-lru", consult=False, swapping=False, placeholders=False)
"""The original, unmodified kernel: plain global LRU, no application control."""

ALLOC_LRU = AllocationPolicy("alloc-lru", consult=True, swapping=False, placeholders=False)
"""Two-level replacement over a straight LRU list (no swapping, no
placeholders) — the baseline Section 6.1 shows penalises smart managers."""

LRU_S = AllocationPolicy("lru-s", consult=True, swapping=True, placeholders=False)
"""LRU-SP without placeholders — the "unprotected" kernel of Table 1."""

LRU_SP = AllocationPolicy("lru-sp", consult=True, swapping=True, placeholders=True)
"""The paper's allocation policy."""

_BY_NAME = {p.name: p for p in (GLOBAL_LRU, ALLOC_LRU, LRU_S, LRU_SP)}


def policy_by_name(name: str) -> AllocationPolicy:
    """Look up one of the four standard policies by name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown allocation policy {name!r} (expected one of {sorted(_BY_NAME)})"
        ) from None
