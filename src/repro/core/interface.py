"""The ``fbehavior`` user/kernel interface.

The paper multiplexes five operations through a single new system call,
"in the same way that the Unix ioctl system call multiplexes several
operations":

* ``set_priority(file, prio)`` / ``get_priority(file)`` — a file's
  long-term cache priority;
* ``set_policy(prio, policy)`` / ``get_policy(prio)`` — the replacement
  policy (LRU or MRU) of one priority level;
* ``set_temppri(file, startBlock, endBlock, prio)`` — a temporary priority
  for a range of resident blocks, reverting on reference or replacement.

This module is the syscall layer: it validates arguments, resolves paths to
file ids through the filesystem, and dispatches to the ACM backends.  The
first ``set_*`` call a process makes registers it as a manager.
"""

from __future__ import annotations

import enum
from typing import Any, Optional, Tuple

from repro.core.acm import ACM, AcmError, RevokedError
from repro.core.policies import PoolPolicy


class FBehaviorOp(enum.Enum):
    """The five multiplexed operations."""

    SET_PRIORITY = "set_priority"
    GET_PRIORITY = "get_priority"
    SET_POLICY = "set_policy"
    GET_POLICY = "get_policy"
    SET_TEMPPRI = "set_temppri"


class FBehaviorError(Exception):
    """An fbehavior call failed (bad operands, unknown file, limits)."""


class FBehaviorRevokedError(FBehaviorError):
    """The calling process's cache control was revoked.

    Distinguished from a generic failure so callers (and the wire
    protocol) can report "you lost control" rather than "bad call" — a
    revoked manager must not be silently re-registered or handed default
    answers.
    """


def fbehavior(acm: ACM, fs, pid: int, op: FBehaviorOp, args: Tuple[Any, ...]) -> Optional[Any]:
    """Execute one fbehavior call for process ``pid``.

    ``fs`` must offer ``lookup(path) -> File`` (``repro.fs.SimFilesystem``
    does); get-calls return a value, set-calls return None.
    """
    try:
        if op is FBehaviorOp.SET_PRIORITY:
            path, prio = args
            acm.set_priority(pid, _file_id(fs, path), int(prio))
            return None
        if op is FBehaviorOp.GET_PRIORITY:
            (path,) = args
            return acm.get_priority(pid, _file_id(fs, path))
        if op is FBehaviorOp.SET_POLICY:
            prio, policy = args
            acm.set_policy(pid, int(prio), PoolPolicy.parse(policy))
            return None
        if op is FBehaviorOp.GET_POLICY:
            (prio,) = args
            return acm.get_policy(pid, int(prio))
        if op is FBehaviorOp.SET_TEMPPRI:
            path, start_block, end_block, prio = args
            acm.set_temppri(pid, _file_id(fs, path), int(start_block), int(end_block), int(prio))
            return None
    except RevokedError as exc:
        raise FBehaviorRevokedError(str(exc)) from exc
    except AcmError as exc:
        raise FBehaviorError(str(exc)) from exc
    except (TypeError, ValueError) as exc:
        raise FBehaviorError(f"{op.value}: bad operands {args!r}: {exc}") from exc
    raise FBehaviorError(f"unknown fbehavior op {op!r}")


def _file_id(fs, path) -> int:
    """Resolve a path (or a raw file id) to a file id."""
    if isinstance(path, int):
        return path
    try:
        return fs.lookup(path).file_id
    except Exception as exc:
        raise FBehaviorError(f"fbehavior: cannot resolve file {path!r}: {exc}") from exc
