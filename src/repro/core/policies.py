"""Per-pool replacement policies.

The paper's interface offers exactly two: LRU and MRU ("At present, we offer
only two policies").  A pool's list is always kept in LRU order (head = least
recently referenced); the policy only decides which end replacement takes:

* **LRU** replaces the head (classic least-recently-used);
* **MRU** replaces the tail — the right choice for cyclic/sequential reuse,
  because it pins the prefix of the cycle and sacrifices the block that was
  just streamed in.

The module also defines the *entry rule* for blocks moved between pools by
``set_priority`` / ``set_temppri``: a moved block enters at the end that
causes it to be replaced **later** (tail under LRU, head under MRU).
"""

from __future__ import annotations

import enum


class PoolPolicy(str, enum.Enum):
    """Replacement policy of one priority pool."""

    LRU = "lru"
    MRU = "mru"

    @classmethod
    def parse(cls, value) -> "PoolPolicy":
        """Accept a PoolPolicy, or the strings ``"lru"`` / ``"mru"``."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            raise ValueError(f"unknown pool policy {value!r} (expected 'lru' or 'mru')") from None


DEFAULT_POLICY = PoolPolicy.LRU
"""Every priority level starts out LRU, as in the paper."""
