"""Upcall-based managers — the road the paper chose not to take.

Section 3 weighs two user/kernel interaction designs: the directive
interface the paper builds (priorities + pool policies, "sufficient to
compose caching strategies … with low overhead") and a "totally general
mechanism" where the kernel *upcalls* into application code on every
replacement decision.  Section 4 notes their BUF/ACM split supports the
general design too: "user-level handlers could know which blocks are in
cache by keeping track of new_block and block_gone calls".  The related
work reports such upcall/RPC schemes cost up to 10 % of execution time.

This module implements that alternative so the trade-off can be measured:

* :class:`UpcallHandler` — the protocol application code implements: it is
  notified of loads, evictions and accesses, and is asked for replacement
  decisions with full freedom (any of its own resident blocks);
* :class:`UpcallManagerMixin` wiring inside :class:`UpcallACM` — an ACM
  variant that forwards the five BUF calls to registered handlers instead
  of maintaining kernel-side pools;
* handlers cost simulated CPU per upcall (configurable on the kernel),
  which is exactly the overhead the directive interface avoids.

The bundled :class:`MRUHandler` and :class:`PinningHandler` mirror the
strategies expressible with directives, so identical *decisions* can be
compared at different *interface cost*.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Set

from repro.core.acm import ACM, Manager, ResourceLimits, RevokedError
from repro.core.blocks import BlockId, CacheBlock
from repro.core.revocation import RevocationPolicy


class UpcallHandler(abc.ABC):
    """User-level replacement logic; runs "in the application".

    The handler sees every event about its process's blocks and owns the
    replacement decision outright.  It must return one of its process's
    *resident* blocks (the candidate is always a legal answer).
    """

    def new_block(self, block: CacheBlock) -> None:
        """A block of this process entered the cache."""

    def block_gone(self, block: CacheBlock) -> None:
        """A block of this process left the cache."""

    def block_accessed(self, block: CacheBlock) -> None:
        """A block of this process was referenced."""

    @abc.abstractmethod
    def replace_block(self, candidate: CacheBlock, missing_id: BlockId) -> CacheBlock:
        """Choose which of this process's blocks to give up."""


class LRUTrackingHandler(UpcallHandler):
    """Base class that maintains the resident set in reference order —
    "keeping track of new_block and block_gone calls", as the paper puts
    it.  ``self.order`` lists resident blocks, LRU first."""

    def __init__(self) -> None:
        self.order: List[CacheBlock] = []
        self._resident: Set[CacheBlock] = set()

    def new_block(self, block: CacheBlock) -> None:
        self._resident.add(block)
        self.order.append(block)

    def block_gone(self, block: CacheBlock) -> None:
        if block in self._resident:
            self._resident.remove(block)
            self.order.remove(block)

    def block_accessed(self, block: CacheBlock) -> None:
        if block in self._resident:
            self.order.remove(block)
            self.order.append(block)

    def _first_evictable(self, blocks) -> Optional[CacheBlock]:
        for block in blocks:
            if not block.in_flight:
                return block
        return None


class MRUHandler(LRUTrackingHandler):
    """Evict this process's most recently used block (cyclic scans)."""

    def replace_block(self, candidate: CacheBlock, missing_id: BlockId) -> CacheBlock:
        choice = self._first_evictable(reversed(self.order))
        return choice if choice is not None else candidate


class LRUHandler(LRUTrackingHandler):
    """Evict this process's least recently used block."""

    def replace_block(self, candidate: CacheBlock, missing_id: BlockId) -> CacheBlock:
        choice = self._first_evictable(self.order)
        return choice if choice is not None else candidate


class PinningHandler(LRUTrackingHandler):
    """LRU among everything except a pinned file (e.g. a hot index)."""

    def __init__(self, pinned_file_ids: Set[int]) -> None:
        super().__init__()
        self.pinned = set(pinned_file_ids)

    def replace_block(self, candidate: CacheBlock, missing_id: BlockId) -> CacheBlock:
        choice = self._first_evictable(
            b for b in self.order if b.file_id not in self.pinned
        )
        if choice is None:
            choice = self._first_evictable(self.order)
        return choice if choice is not None else candidate


class UpcallACM(ACM):
    """An ACM whose managers are user-level handlers.

    Processes with a registered handler get upcalls; processes using the
    directive interface coexist (the normal ACM paths still work).  The
    kernel can count upcalls to charge their CPU cost.
    """

    def __init__(
        self,
        limits: Optional[ResourceLimits] = None,
        revocation: Optional[RevocationPolicy] = None,
    ) -> None:
        super().__init__(limits=limits, revocation=revocation)
        self._handlers: Dict[int, UpcallHandler] = {}
        self.upcalls = 0
        self.handler_failures = 0

    def register_handler(self, pid: int, handler: UpcallHandler) -> None:
        """Attach a user-level handler to ``pid`` (adopting its resident
        blocks, like directive registration does).

        A pid whose control was revoked stays revoked: registering a new
        handler is refused, exactly as directive re-registration is —
        otherwise a crashing manager could regain control by reconnecting.
        """
        m = self.managers.get(pid)
        if m is not None and m.revoked:
            raise RevokedError(f"pid {pid}: cache control was revoked")
        self._handlers[pid] = handler
        if self._cache is not None:
            for block in self._cache.blocks_owned_by(pid):
                handler.new_block(block)

    def _handler_failed(self, pid: int) -> None:
        """A handler raised into the kernel: strip it and revoke control.

        The process degrades to plain global LRU (the paper's fallback for
        misbehaving managers); the revoked marker persists so later
        registration attempts get :class:`RevokedError`.
        """
        if self.telemetry is not None:
            self.telemetry.annotate("fault.upcall_handler", pid=pid)
        self._handlers.pop(pid, None)
        self.handler_failures += 1
        m = self.managers.get(pid)
        if m is None:
            m = Manager(pid, self.limits)
            m.observer = self.observer
            self.managers[pid] = m
        if not m.revoked:
            m.revoke()
            self.revocations += 1
            if self.injector is not None:
                self.injector.note_manager_revoked()

    def handler(self, pid: int) -> Optional[UpcallHandler]:
        return self._handlers.get(pid)

    # -- BUF calls: forward to handlers as upcalls ---------------------------

    def new_block(self, block: CacheBlock, referenced: bool = True) -> None:
        handler = self._handlers.get(block.owner_pid)
        if handler is not None:
            self.upcalls += 1
            try:
                handler.new_block(block)
            except Exception:
                self._handler_failed(block.owner_pid)
            return
        super().new_block(block, referenced=referenced)

    def block_gone(self, block: CacheBlock) -> None:
        handler = self._handlers.get(block.owner_pid)
        if handler is not None:
            self.upcalls += 1
            try:
                handler.block_gone(block)
            except Exception:
                self._handler_failed(block.owner_pid)
            return
        super().block_gone(block)

    def block_accessed(self, block: CacheBlock, offset: int = 0, size: int = 0) -> None:
        handler = self._handlers.get(block.owner_pid)
        if handler is not None:
            self.upcalls += 1
            try:
                handler.block_accessed(block)
            except Exception:
                self._handler_failed(block.owner_pid)
            return
        super().block_accessed(block, offset, size)

    def replace_block(self, candidate: CacheBlock, missing_id: BlockId) -> CacheBlock:
        handler = self._handlers.get(candidate.owner_pid)
        if handler is not None:
            self.upcalls += 1
            try:
                chosen = handler.replace_block(candidate, missing_id)
            except Exception:
                # A handler that *raises* into the kernel loses control
                # outright; the candidate is replaced as global LRU would.
                self._handler_failed(candidate.owner_pid)
                return candidate
            if (
                chosen is None
                or not chosen.resident
                or chosen.in_flight
                or chosen.owner_pid != candidate.owner_pid
            ):
                # A broken handler cannot hurt the kernel: fall back.
                return candidate
            return chosen
        return super().replace_block(candidate, missing_id)

    def transfer_ownership(self, block: CacheBlock, new_pid: int) -> None:
        old_handler = self._handlers.get(block.owner_pid)
        if old_handler is not None:
            old_handler.block_gone(block)
            block.pool_prio = None
            block.owner_pid = new_pid
            new_handler = self._handlers.get(new_pid)
            if new_handler is not None:
                new_handler.new_block(block)
            else:
                m = self.manager(new_pid)
                if m is not None:
                    m.add_block(block)
            return
        new_handler = self._handlers.get(new_pid)
        if new_handler is not None:
            m = self.managers.get(block.owner_pid)
            if m is not None:
                m.remove_block(block)
            block.owner_pid = new_pid
            new_handler.new_block(block)
            return
        super().transfer_ownership(block, new_pid)
