"""An O(1) doubly-linked LRU list.

Both the kernel's global list and every per-pool list in the ACM are
instances of this structure.  The list stores arbitrary hashable items
(cache blocks) and keeps its links in side dictionaries, so one block can
sit on several lists at once (the global list plus its pool list) without
the lists interfering.

Convention: the **head is the LRU end** (oldest reference), the **tail is
the MRU end** (newest).  "Kept in LRU order" in the paper's sense means a
referenced item moves to the tail.

``swap`` exchanges the positions of two items in place — the operation
LRU-SP performs when a manager overrules the kernel's candidate.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, Optional, TypeVar

T = TypeVar("T", bound=Hashable)


class LRUList:
    """Doubly-linked list with O(1) push/remove/move/swap."""

    def __init__(self) -> None:
        self._prev: Dict = {}
        self._next: Dict = {}
        self._head: Optional[object] = None
        self._tail: Optional[object] = None

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._prev)

    def __contains__(self, item) -> bool:
        return item in self._prev

    def __bool__(self) -> bool:
        return self._head is not None

    @property
    def lru(self):
        """The item at the LRU end (head), or None if empty."""
        return self._head

    @property
    def mru(self):
        """The item at the MRU end (tail), or None if empty."""
        return self._tail

    def next_toward_mru(self, item):
        """The neighbour one step toward the MRU end, or None at the tail."""
        return self._next[item]

    def prev_toward_lru(self, item):
        """The neighbour one step toward the LRU end, or None at the head."""
        return self._prev[item]

    def __iter__(self) -> Iterator:
        """Iterate from the LRU end to the MRU end."""
        node = self._head
        while node is not None:
            nxt = self._next[node]
            yield node
            node = nxt

    def items_mru_first(self) -> Iterator:
        """Iterate from the MRU end to the LRU end."""
        node = self._tail
        while node is not None:
            prv = self._prev[node]
            yield node
            node = prv

    # -- mutations ---------------------------------------------------------

    def push_mru(self, item) -> None:
        """Insert ``item`` at the MRU end (a fresh reference)."""
        if item in self._prev:
            raise ValueError(f"{item!r} already on list")
        self._prev[item] = self._tail
        self._next[item] = None
        if self._tail is not None:
            self._next[self._tail] = item
        else:
            self._head = item
        self._tail = item

    def push_lru(self, item) -> None:
        """Insert ``item`` at the LRU end (first in line for replacement)."""
        if item in self._prev:
            raise ValueError(f"{item!r} already on list")
        self._next[item] = self._head
        self._prev[item] = None
        if self._head is not None:
            self._prev[self._head] = item
        else:
            self._tail = item
        self._head = item

    def remove(self, item) -> None:
        """Unlink ``item``; KeyError if absent."""
        prv = self._prev.pop(item)
        nxt = self._next.pop(item)
        if prv is not None:
            self._next[prv] = nxt
        else:
            self._head = nxt
        if nxt is not None:
            self._prev[nxt] = prv
        else:
            self._tail = prv

    def discard(self, item) -> bool:
        """Remove ``item`` if present; returns whether it was."""
        if item not in self._prev:
            return False
        self.remove(item)
        return True

    def move_to_mru(self, item) -> None:
        """Re-link ``item`` at the MRU end (the "referenced" movement)."""
        if self._tail is item:
            return
        self.remove(item)
        self.push_mru(item)

    def move_to_lru(self, item) -> None:
        """Re-link ``item`` at the LRU end."""
        if self._head is item:
            return
        self.remove(item)
        self.push_lru(item)

    def insert_before(self, item, anchor) -> None:
        """Insert ``item`` immediately on the LRU side of ``anchor``."""
        if item in self._prev:
            raise ValueError(f"{item!r} already on list")
        if anchor not in self._prev:
            raise KeyError(f"anchor {anchor!r} not on list")
        prv = self._prev[anchor]
        self._prev[item] = prv
        self._next[item] = anchor
        self._prev[anchor] = item
        if prv is not None:
            self._next[prv] = item
        else:
            self._head = item

    def swap(self, a, b) -> None:
        """Exchange the positions of ``a`` and ``b`` (LRU-SP's "swapping").

        Every other item keeps its position and relative order.
        """
        if a is b or a == b:
            return
        if a not in self._prev or b not in self._prev:
            raise KeyError("both items must be on the list")
        if self._next[a] is b:
            # Adjacent (a just LRU-ward of b): re-insert b before a.
            self.remove(b)
            self.insert_before(b, a)
            return
        if self._next[b] is a:
            self.remove(a)
            self.insert_before(a, b)
            return
        next_a = self._next[a]
        next_b = self._next[b]
        self.remove(a)
        self.remove(b)
        # a takes b's old slot, b takes a's old slot.
        if next_b is not None:
            self.insert_before(a, next_b)
        else:
            self.push_mru(a)
        if next_a is not None:
            self.insert_before(b, next_a)
        else:
            self.push_mru(b)

    def clear(self) -> None:
        """Empty the list."""
        self._prev.clear()
        self._next.clear()
        self._head = None
        self._tail = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LRUList len={len(self)}>"
