"""Revocation of cache control from foolish managers.

Section 6.2 of the paper concludes that "the best way to provide protection
from foolish processes is probably for the kernel to revoke the
cache-control privileges of consistently foolish applications", and a
footnote says the authors were adding exactly this.  This module implements
that extension.

Placeholders give the kernel the signal: every ``placeholder_used`` event
means an earlier overrule was a mistake (the replaced block was missed
again soon).  A manager whose mistake ratio over a minimum sample of
decisions exceeds a threshold loses its manager status — the kernel stops
consulting it, and it behaves like an oblivious process from then on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RevocationPolicy:
    """When to revoke a manager's control.

    Attributes:
        min_decisions: don't judge a manager before it has overruled the
            kernel this many times (avoids revoking on early noise).
        mistake_ratio: revoke once mistakes / decisions exceeds this.
    """

    min_decisions: int = 64
    mistake_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.min_decisions < 1:
            raise ValueError("min_decisions must be >= 1")
        if not 0.0 < self.mistake_ratio <= 1.0:
            raise ValueError("mistake_ratio must be in (0, 1]")

    def should_revoke(self, decisions: int, mistakes: int) -> bool:
        """Judge a manager from its lifetime overrule/mistake counts."""
        if decisions < self.min_decisions:
            return False
        return mistakes / decisions > self.mistake_ratio
