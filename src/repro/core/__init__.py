"""The paper's contribution: two-level replacement with LRU-SP.

Module map (mirroring the kernel structure of the paper's Section 4):

* :mod:`repro.core.buffercache` — **BUF**: frames, lookup, the miss path and
  the replacement procedure (candidate selection, manager consultation,
  swapping, placeholder creation).
* :mod:`repro.core.acm` — **ACM**: per-process managers, priority pools with
  per-pool LRU/MRU policies, temporary priorities; implements the five
  BUF↔ACM procedure calls (``new_block``, ``block_gone``, ``block_accessed``,
  ``replace_block``, ``placeholder_used``).
* :mod:`repro.core.interface` — the ``fbehavior`` user/kernel interface:
  ``set_priority`` / ``get_priority`` / ``set_policy`` / ``get_policy`` /
  ``set_temppri``.
* :mod:`repro.core.allocation` — the global allocation policies: the original
  kernel (GLOBAL_LRU) and the two-level policies ALLOC_LRU, LRU_S, LRU_SP.
* :mod:`repro.core.placeholders`, :mod:`repro.core.lrulist`,
  :mod:`repro.core.blocks` — supporting data structures.
* :mod:`repro.core.revocation` — the extension the paper footnotes: revoke
  cache control from managers whose decisions are consistently wrong.
* :mod:`repro.core.opt` — offline Belady/OPT miss counts for calibration.
"""

from repro.core.allocation import (
    ALLOC_LRU,
    GLOBAL_LRU,
    LRU_S,
    LRU_SP,
    AllocationPolicy,
    policy_by_name,
)
from repro.core.acm import ACM, Manager, Pool, ResourceLimits, RevokedError
from repro.core.blocks import BlockId, CacheBlock
from repro.core.buffercache import AccessOutcome, BufferCache, CacheStats
from repro.core.interface import (
    FBehaviorError,
    FBehaviorOp,
    FBehaviorRevokedError,
    fbehavior,
)
from repro.core.lrulist import LRUList
from repro.core.placeholders import PlaceholderTable
from repro.core.policies import PoolPolicy
from repro.core.revocation import RevocationPolicy
from repro.core.upcall import (
    LRUHandler,
    MRUHandler,
    PinningHandler,
    UpcallACM,
    UpcallHandler,
)

__all__ = [
    "AllocationPolicy",
    "GLOBAL_LRU",
    "ALLOC_LRU",
    "LRU_S",
    "LRU_SP",
    "policy_by_name",
    "ACM",
    "Manager",
    "Pool",
    "ResourceLimits",
    "BlockId",
    "CacheBlock",
    "BufferCache",
    "AccessOutcome",
    "CacheStats",
    "FBehaviorOp",
    "FBehaviorError",
    "FBehaviorRevokedError",
    "RevokedError",
    "fbehavior",
    "LRUList",
    "PlaceholderTable",
    "PoolPolicy",
    "RevocationPolicy",
    "UpcallACM",
    "UpcallHandler",
    "MRUHandler",
    "LRUHandler",
    "PinningHandler",
]
