"""Offline optimal replacement (Belady's MIN / OPT).

The companion paper [3] proposes that application replacement policies be
derived from the *optimal replacement principle*.  This module computes the
offline optimum for a recorded reference string — the unreachable lower
bound the paper's smart policies chase.  The harness uses it to sanity-check
calibration (a smart policy must land between LRU and OPT), and an ablation
benchmark reports how close each application's policy gets.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple


def opt_misses(trace: Sequence[Hashable], cache_size: int) -> int:
    """Minimum possible misses for ``trace`` with ``cache_size`` frames.

    Classic Belady with a lazy max-heap of next-use distances; runs in
    O(n log n) over the trace length.
    """
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    refs = list(trace)
    n = len(refs)
    # next_use[i] = index of the next reference to refs[i] after i, or n.
    next_use: List[int] = [n] * n
    last_seen: Dict[Hashable, int] = {}
    for i in range(n - 1, -1, -1):
        next_use[i] = last_seen.get(refs[i], n)
        last_seen[refs[i]] = i

    resident: Dict[Hashable, int] = {}  # block -> its current next-use index
    heap: List[Tuple[int, int, Hashable]] = []  # (-next_use, tiebreak, block)
    misses = 0
    for i, block in enumerate(refs):
        if block in resident:
            resident[block] = next_use[i]
            heapq.heappush(heap, (-next_use[i], i, block))
            continue
        misses += 1
        if len(resident) >= cache_size:
            # Evict the resident block referenced farthest in the future,
            # skipping stale heap entries.
            while True:
                neg_nu, _, victim = heapq.heappop(heap)
                if victim in resident and resident[victim] == -neg_nu:
                    del resident[victim]
                    break
        resident[block] = next_use[i]
        heapq.heappush(heap, (-next_use[i], i, block))
    return misses


def lru_misses(trace: Iterable[Hashable], cache_size: int) -> int:
    """Miss count for plain LRU on the same trace (reference baseline)."""
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    from collections import OrderedDict

    resident: "OrderedDict[Hashable, None]" = OrderedDict()
    misses = 0
    for block in trace:
        if block in resident:
            resident.move_to_end(block)
            continue
        misses += 1
        if len(resident) >= cache_size:
            resident.popitem(last=False)
        resident[block] = None
    return misses


def mru_misses(trace: Iterable[Hashable], cache_size: int) -> int:
    """Miss count for a single MRU pool on the same trace."""
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    from collections import OrderedDict

    resident: "OrderedDict[Hashable, None]" = OrderedDict()
    misses = 0
    for block in trace:
        if block in resident:
            resident.move_to_end(block)
            continue
        misses += 1
        if len(resident) >= cache_size:
            resident.popitem(last=True)  # evict the most recently used
        resident[block] = None
    return misses
