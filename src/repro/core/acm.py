"""ACM — the Application Control Module.

The paper splits the kernel cache code into BUF (buffer management +
allocation) and ACM, which "implements the interface calls and acts as a
proxy for the user-level managers".  This module is that proxy: it keeps a
*manager* structure for every process that controls its own caching, a
header per priority level holding the LRU-ordered list of that level's
blocks, and the per-file long-term priorities.

BUF talks to the ACM through exactly the five procedure calls of the
paper's Section 4: ``new_block``, ``block_gone``, ``block_accessed``,
``replace_block`` and ``placeholder_used``.

Replacement semantics implemented here:

* the kernel "always replaces blocks with the lowest priority first"
  (within a single process);
* pool lists are kept in LRU order; an LRU pool replaces from the head, an
  MRU pool from the tail;
* blocks *moving* into a list (via ``set_priority`` / ``set_temppri``) enter
  at the end that makes them be replaced later (tail under LRU, head under
  MRU); blocks *entering the cache* or being *referenced* take the MRU end,
  which is what "kept in LRU order" requires;
* a temporary priority affects only currently-resident blocks and reverts
  on the block's next reference or replacement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.blocks import BlockId, CacheBlock
from repro.core.lrulist import LRUList
from repro.core.policies import DEFAULT_POLICY, PoolPolicy
from repro.core.revocation import RevocationPolicy


class AcmError(Exception):
    """An interface call failed (bad arguments or resource limits)."""


class RevokedError(AcmError):
    """The calling process's cache control was revoked.

    After revocation the kernel treats the process as oblivious (global
    LRU).  Further interface calls — gets as much as sets — are *errors*,
    never silent defaults or re-grants: a manager must learn it lost
    control rather than keep steering a cache that stopped listening.
    """


@dataclass(frozen=True)
class ResourceLimits:
    """Caps on kernel memory consumed per manager.

    The paper: "The implementation imposes a limit on kernel resources
    consumed by these data structures and fails the calls if the limit
    would be exceeded."
    """

    max_priority_levels: int = 32
    max_priority_files: int = 1024
    max_placeholders: int = 4096

    def __post_init__(self) -> None:
        if self.max_priority_levels < 1 or self.max_priority_files < 1 or self.max_placeholders < 1:
            raise ValueError("resource limits must be positive")


class Pool:
    """One priority level of one manager: an LRU-ordered block list."""

    __slots__ = ("prio", "blocks")

    def __init__(self, prio: int) -> None:
        self.prio = prio
        self.blocks = LRUList()

    def __len__(self) -> int:
        return len(self.blocks)

    def insert_referenced(self, block: CacheBlock) -> None:
        """A block entering by reference (cache load): MRU end."""
        self.blocks.push_mru(block)

    def insert_moved(self, block: CacheBlock, policy: PoolPolicy) -> None:
        """A block moved between pools: the replaced-later end."""
        if policy is PoolPolicy.LRU:
            self.blocks.push_mru(block)
        else:
            self.blocks.push_lru(block)

    def touched(self, block: CacheBlock) -> None:
        """A reference: keep LRU order."""
        self.blocks.move_to_mru(block)

    def remove(self, block: CacheBlock) -> None:
        self.blocks.remove(block)

    def replacement_choice(self, policy: PoolPolicy) -> Optional[CacheBlock]:
        """The block this pool would give up (skipping in-flight frames)."""
        if policy is PoolPolicy.LRU:
            node = self.blocks.lru
            step = self.blocks.next_toward_mru
        else:
            node = self.blocks.mru
            step = self.blocks.prev_toward_lru
        while node is not None and node.in_flight:
            node = step(node)
        return node


class Manager:
    """The per-process manager structure."""

    def __init__(self, pid: int, limits: ResourceLimits) -> None:
        self.pid = pid
        self.limits = limits
        self.pools: Dict[int, Pool] = {}
        self.policies: Dict[int, PoolPolicy] = {}
        self.file_prios: Dict[int, int] = {}
        self.revoked = False
        # decisions = overrules issued; mistakes = placeholders that fired.
        self.decisions = 0
        self.mistakes = 0
        self._prio_order: List[int] = []
        #: pool observer (the runtime sanitizer); told about every placement.
        self.observer = None

    def _notify_positioned(self, block: CacheBlock) -> None:
        if self.observer is not None:
            self.observer.pool_positioned(self.pid, block)

    # -- configuration ------------------------------------------------------

    def policy_of(self, prio: int) -> PoolPolicy:
        return self.policies.get(prio, DEFAULT_POLICY)

    def set_policy(self, prio: int, policy: PoolPolicy) -> None:
        policy = PoolPolicy.parse(policy)
        if prio not in self.policies and len(self.policies) >= self.limits.max_priority_levels:
            raise AcmError(f"manager {self.pid}: too many priority levels")
        self.policies[prio] = policy

    def long_term_prio(self, file_id: int) -> int:
        return self.file_prios.get(file_id, 0)

    def set_file_prio(self, file_id: int, prio: int) -> None:
        if prio == 0:
            # Only non-zero priorities consume a file record.
            self.file_prios.pop(file_id, None)
            return
        if file_id not in self.file_prios and len(self.file_prios) >= self.limits.max_priority_files:
            raise AcmError(f"manager {self.pid}: too many priority files")
        self.file_prios[file_id] = prio

    def pool(self, prio: int) -> Pool:
        """The pool for ``prio``, created on demand."""
        existing = self.pools.get(prio)
        if existing is not None:
            return existing
        if len(self.pools) >= self.limits.max_priority_levels:
            raise AcmError(f"manager {self.pid}: too many priority levels")
        created = Pool(prio)
        self.pools[prio] = created
        self._prio_order = sorted(self.pools)
        return created

    # -- block membership -----------------------------------------------------

    def add_block(self, block: CacheBlock, referenced: bool = True) -> None:
        """Link a block entering the cache into its long-term pool.

        ``referenced`` is False for read-ahead blocks: nothing has touched
        them yet, and their predicted use is imminent, so they enter at the
        survive-longest end (the same placement rule the paper uses for
        blocks moved between pools) rather than the "just referenced" MRU
        position.  Without this, an MRU pool would evict the block the
        kernel just prefetched, before the application ever reads it.
        """
        prio = self.long_term_prio(block.file_id)
        pool = self.pool(prio)
        if referenced:
            pool.insert_referenced(block)
        else:
            pool.insert_moved(block, self.policy_of(prio))
        block.pool_prio = prio
        self._notify_positioned(block)

    def remove_block(self, block: CacheBlock) -> None:
        """Unlink a departing block and reset its pool state."""
        if block.pool_prio is not None:
            pool = self.pools.get(block.pool_prio)
            if pool is not None and block in pool.blocks:
                pool.remove(block)
        block.pool_prio = None
        block.has_temp = False
        block.temp_prio = None

    def move_block(self, block: CacheBlock, prio: int) -> None:
        """Move a resident block to another pool (priority change)."""
        if block.pool_prio == prio:
            return
        if block.pool_prio is not None:
            pool = self.pools.get(block.pool_prio)
            if pool is not None and block in pool.blocks:
                pool.remove(block)
        dest = self.pool(prio)
        dest.insert_moved(block, self.policy_of(prio))
        block.pool_prio = prio
        self._notify_positioned(block)

    def touch_block(self, block: CacheBlock) -> None:
        """A reference: revert any temporary priority, then record recency."""
        if block.has_temp:
            block.has_temp = False
            block.temp_prio = None
            long_prio = self.long_term_prio(block.file_id)
            if block.pool_prio is not None:
                pool = self.pools.get(block.pool_prio)
                if pool is not None and block in pool.blocks:
                    pool.remove(block)
            # The revert coincides with a reference, so the block re-enters
            # its long-term pool at the MRU end.
            self.pool(long_prio).insert_referenced(block)
            block.pool_prio = long_prio
            self._notify_positioned(block)
            return
        if block.pool_prio is not None:
            pool = self.pools.get(block.pool_prio)
            if pool is not None:
                pool.touched(block)
                self._notify_positioned(block)

    # -- the replacement decision ------------------------------------------------

    def pick_replacement(self) -> Optional[CacheBlock]:
        """This manager's choice: lowest non-empty priority pool, then that
        pool's policy end."""
        for prio in self._prio_order:
            pool = self.pools[prio]
            if len(pool) == 0:
                continue
            choice = pool.replacement_choice(self.policy_of(prio))
            if choice is not None:
                return choice
        return None

    def revoke(self) -> None:
        """Strip manager status: pools are dissolved and the kernel stops
        consulting this process (it becomes oblivious)."""
        self.revoked = True
        for pool in self.pools.values():
            for block in list(pool.blocks):
                pool.remove(block)
                block.pool_prio = None
                block.has_temp = False
                block.temp_prio = None
        self.pools.clear()
        self._prio_order = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Manager pid={self.pid} pools={sorted(self.pools)} revoked={self.revoked}>"


class ACM:
    """The kernel-side proxy for all user-level managers."""

    def __init__(
        self,
        limits: Optional[ResourceLimits] = None,
        revocation: Optional[RevocationPolicy] = None,
    ) -> None:
        self.limits = limits or ResourceLimits()
        self.revocation = revocation
        self.managers: Dict[int, Manager] = {}
        self._cache = None  # attached by BufferCache
        #: pool observer (the runtime sanitizer), propagated to managers.
        self.observer = None
        #: optional repro.faults.FaultInjector simulating manager
        #: misbehaviour at the consultation boundary.
        self.injector: Optional[Any] = None
        #: optional repro.telemetry.Telemetry; revocations and injected
        #: manager misbehaviour annotate the active trace span.
        self.telemetry: Optional[Any] = None
        self.revocations = 0
        # Concurrently shared files (the paper's future-work item): a file
        # may have a *designated* manager; other processes' accesses then
        # do not bounce block ownership around.
        self._shared_files: Dict[int, int] = {}

    # -- wiring ----------------------------------------------------------

    def attach(self, cache) -> None:
        """Connect the BUF module (needed to adopt already-resident blocks
        when a process registers, and to find a file's resident blocks)."""
        self._cache = cache

    def attach_observer(self, observer) -> None:
        """Connect (or, with None, disconnect) a pool observer — an object
        with a ``pool_positioned(pid, block)`` method, called after every
        pool placement any manager performs.  Used by the runtime
        sanitizer (:mod:`repro.check.invariants`)."""
        self.observer = observer
        for manager in self.managers.values():
            manager.observer = observer

    # -- manager lifecycle ---------------------------------------------------

    def manager(self, pid: int) -> Optional[Manager]:
        """The *active* manager for ``pid`` (None if absent or revoked)."""
        m = self.managers.get(pid)
        if m is None or m.revoked:
            return None
        return m

    def register(self, pid: int) -> Manager:
        """Create (or return) the manager for ``pid``.

        Blocks the process already owns are adopted into its pools, so a
        late first directive still leaves the bookkeeping consistent.
        """
        existing = self.managers.get(pid)
        if existing is not None:
            if existing.revoked:
                raise RevokedError(f"pid {pid}: cache control was revoked")
            return existing
        m = Manager(pid, self.limits)
        m.observer = self.observer
        self.managers[pid] = m
        if self._cache is not None:
            for block in self._cache.blocks_owned_by(pid):
                m.add_block(block)
        return m

    # -- the five BUF -> ACM procedure calls --------------------------------

    def new_block(self, block: CacheBlock, referenced: bool = True) -> None:
        """BUF loaded ``block`` into a cache buffer."""
        m = self.manager(block.owner_pid)
        if m is None:
            block.pool_prio = None
            return
        m.add_block(block, referenced=referenced)

    def block_gone(self, block: CacheBlock) -> None:
        """BUF removed ``block`` from the cache."""
        m = self.managers.get(block.owner_pid)
        if m is not None:
            m.remove_block(block)
        else:
            block.pool_prio = None
            block.has_temp = False
            block.temp_prio = None

    def block_accessed(self, block: CacheBlock, offset: int = 0, size: int = 0) -> None:
        """BUF satisfied an access to ``block`` (hit path bookkeeping)."""
        m = self.manager(block.owner_pid)
        if m is not None:
            m.touch_block(block)

    def replace_block(self, candidate: CacheBlock, missing_id: BlockId) -> CacheBlock:
        """BUF asks: which block should go instead of ``candidate``?

        Consults the candidate's owner's manager; an unmanaged (or revoked)
        owner simply loses the candidate.  Under fault injection a
        consultation can misbehave (bad reply, timeout, exception); the
        kernel then ignores the manager for this decision — the candidate
        goes — and, past the plan's tolerance, revokes it outright: the
        paper's fallback of degrading a faulty manager's process to plain
        global LRU.
        """
        m = self.manager(candidate.owner_pid)
        if m is None:
            return candidate
        if self.injector is not None:
            kind = self.injector.manager_fault(m.pid)
            if kind is not None:
                self._manager_misbehaved(m, kind)
                return candidate
        choice = m.pick_replacement()
        if choice is None:
            return candidate
        if choice is not candidate:
            m.decisions += 1
        return choice

    def _manager_misbehaved(self, m: Manager, kind: str) -> None:
        """Tally one injected misbehaviour; revoke past the tolerance."""
        if self.telemetry is not None:
            self.telemetry.annotate("fault.manager", pid=m.pid, kind=kind)
        if kind == "forced":
            self._revoke_for_faults(m)
            return
        total = self.injector.note_manager_fault(m.pid)
        if total >= self.injector.plan.manager_fault_limit:
            self._revoke_for_faults(m)

    def _revoke_for_faults(self, m: Manager) -> None:
        if m.revoked:
            return
        m.revoke()
        self.revocations += 1
        if self.telemetry is not None:
            self.telemetry.annotate("acm.revoked", pid=m.pid, reason="faults")
        if self.injector is not None:
            self.injector.note_manager_revoked()

    def placeholder_used(self, manager_pid: int, missing_id: BlockId, kept: CacheBlock) -> None:
        """BUF reports that a previous overrule by ``manager_pid`` was a
        mistake: the replaced block was missed while its placeholder lived."""
        m = self.managers.get(manager_pid)
        if m is None or m.revoked:
            return
        m.mistakes += 1
        if self.revocation is not None and self.revocation.should_revoke(m.decisions, m.mistakes):
            m.revoke()
            self.revocations += 1
            if self.telemetry is not None:
                self.telemetry.annotate(
                    "acm.revoked", pid=m.pid, reason="mistakes"
                )

    # -- concurrently shared files ---------------------------------------------

    def share_file(self, file_id: int, manager_pid: int) -> None:
        """Designate ``manager_pid`` as the controlling manager for a file
        accessed by several processes.

        Without a designation, block ownership follows the last accessor —
        correct for private files but thrash-prone for shared ones, because
        every cross-process access re-pools the block under a different
        manager.  With one, the designated manager keeps control: its
        priorities and policies govern the file's blocks no matter who
        touches them.  (The paper lists "user-level control over caching of
        concurrently shared files" as work in progress; this is the natural
        realisation within its manager structure.)
        """
        self.register(manager_pid)
        self._shared_files[file_id] = manager_pid
        if self._cache is not None:
            for block in self._cache.blocks_of_file(file_id):
                if block.owner_pid != manager_pid:
                    self.transfer_ownership(block, manager_pid)

    def unshare_file(self, file_id: int) -> None:
        """Remove a designation; ownership follows accessors again."""
        self._shared_files.pop(file_id, None)

    def shared_manager_of(self, file_id: int) -> Optional[int]:
        return self._shared_files.get(file_id)

    def on_foreign_access(self, block: CacheBlock, pid: int) -> None:
        """A process other than the owner touched ``block``.

        Shared files keep their designated manager; private files follow
        the last accessor (the default Ultrix-ish behaviour).
        """
        if block.file_id in self._shared_files:
            return
        self.transfer_ownership(block, pid)

    def home_pid_for(self, pid: int, file_id: int) -> int:
        """Which process a newly loaded block of ``file_id`` belongs to."""
        return self._shared_files.get(file_id, pid)

    # -- ownership migration -----------------------------------------------------

    def transfer_ownership(self, block: CacheBlock, new_pid: int) -> None:
        """Re-home a block whose last accessor changed process."""
        old = self.managers.get(block.owner_pid)
        if old is not None:
            old.remove_block(block)
        else:
            block.pool_prio = None
            block.has_temp = False
            block.temp_prio = None
        block.owner_pid = new_pid
        m = self.manager(new_pid)
        if m is not None:
            m.add_block(block)

    # -- interface-call backends (invoked via repro.core.interface) -------------

    def set_priority(self, pid: int, file_id: int, prio: int) -> None:
        """Set a file's long-term priority and migrate its resident blocks."""
        m = self.register(pid)
        m.set_file_prio(file_id, prio)
        if self._cache is None:
            return
        for block in self._cache.blocks_of_file(file_id):
            if block.owner_pid != pid or block.has_temp:
                # Temporary priorities stay in force until reference or
                # replacement; the new long-term level applies at revert.
                continue
            m.move_block(block, prio)

    def get_priority(self, pid: int, file_id: int) -> int:
        m = self.managers.get(pid)
        if m is None:
            return 0
        if m.revoked:
            raise RevokedError(f"pid {pid}: cache control was revoked")
        return m.long_term_prio(file_id)

    def set_policy(self, pid: int, prio: int, policy: PoolPolicy) -> None:
        m = self.register(pid)
        m.set_policy(prio, policy)

    def get_policy(self, pid: int, prio: int) -> PoolPolicy:
        m = self.managers.get(pid)
        if m is None:
            return DEFAULT_POLICY
        if m.revoked:
            raise RevokedError(f"pid {pid}: cache control was revoked")
        return m.policy_of(prio)

    def set_temppri(self, pid: int, file_id: int, start_block: int, end_block: int, prio: int) -> None:
        """Temporarily re-prioritise the resident blocks of a file range."""
        if end_block < start_block:
            raise AcmError(f"set_temppri: empty range [{start_block}, {end_block}]")
        m = self.register(pid)
        if self._cache is None:
            return
        for block in self._cache.blocks_of_file(file_id):
            if block.owner_pid != pid:
                continue
            if not (start_block <= block.blockno <= end_block):
                continue
            m.move_block(block, prio)
            block.has_temp = True
            block.temp_prio = prio
