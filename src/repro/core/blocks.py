"""Cache blocks and their identity.

A block is identified by ``(file_id, blockno)`` — the Ultrix buffer cache
keyed buffers by (vnode, logical block) the same way.  The paper notes that
stock Ultrix did *not* remember which file's data sat in a buffer and that
their implementation had to add this bookkeeping; here it is simply part of
the block.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

BlockId = Tuple[int, int]
"""(file_id, logical block number) — the cache-wide block key."""


class CacheBlock:
    """One resident 8 KB cache buffer and its bookkeeping.

    Attributes:
        file_id / blockno: identity within the cache.
        lba / disk: where the block lives on stable storage (set when the
            kernel resolved the file mapping; used for write-back).
        owner_pid: the process whose access brought the block in (updated on
            later accesses by other processes) — the manager consulted about
            this block is its owner's.
        pool_prio: the priority level of the ACM pool currently holding the
            block (None when the owner has no manager).
        temp_prio / has_temp: a temporary priority from ``set_temppri``;
            reverts on the next reference or replacement.
        dirty / dirty_since: delayed-write state for the update daemon.
        in_flight: a demand read is outstanding; the frame is claimed but the
            data has not arrived.  In-flight blocks are never replacement
            candidates.
        waiters: processes to resume when the in-flight read completes.
    """

    __slots__ = (
        "file_id",
        "blockno",
        "lba",
        "disk",
        "owner_pid",
        "pool_prio",
        "temp_prio",
        "has_temp",
        "dirty",
        "dirty_since",
        "in_flight",
        "waiters",
        "resident",
    )

    def __init__(
        self,
        file_id: int,
        blockno: int,
        lba: int = 0,
        disk: str = "",
        owner_pid: int = -1,
    ) -> None:
        self.file_id = file_id
        self.blockno = blockno
        self.lba = lba
        self.disk = disk
        self.owner_pid = owner_pid
        self.pool_prio: Optional[int] = None
        self.temp_prio: Optional[int] = None
        self.has_temp = False
        self.dirty = False
        self.dirty_since = 0.0
        self.in_flight = False
        self.waiters: List[Any] = []
        self.resident = True

    @property
    def id(self) -> BlockId:
        """The cache key for this block."""
        return (self.file_id, self.blockno)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, on in (
                ("D", self.dirty),
                ("F", self.in_flight),
                ("T", self.has_temp),
            )
            if on
        )
        return f"<Block f{self.file_id}:{self.blockno} pid={self.owner_pid} {flags}>"
