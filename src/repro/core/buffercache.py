"""BUF — the buffer cache module.

BUF owns the cache frames, the block lookup table, the kernel's global LRU
list and the placeholder table, and it implements the replacement procedure
of the paper's Section 4:

    Instead of replacing the LRU block, the procedure first checks if the
    missing block has a placeholder, then takes the LRU block or the block
    pointed to by the placeholder (if there is one) as the candidate.  BUF
    calls ``replace_block`` if the candidate block's caching is
    application-controlled, and finally BUF swaps block positions and
    builds a placeholder.

Which of those steps run is governed by the
:class:`~repro.core.allocation.AllocationPolicy`, so the same code path
realises the original kernel (GLOBAL_LRU) and the ALLOC-LRU / LRU-S /
LRU-SP variants the paper compares.

BUF performs no I/O itself: an access returns an :class:`AccessOutcome`
describing what the caller (the simulated kernel, or a trace driver) must
do — write back an evicted dirty block and/or read the missed block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.acm import ACM
from repro.core.allocation import LRU_SP, AllocationPolicy
from repro.core.blocks import BlockId, CacheBlock
from repro.core.lrulist import LRUList
from repro.core.placeholders import PlaceholderTable


class CacheFullError(RuntimeError):
    """Every frame is pinned by an in-flight read; no victim exists."""


@dataclass
class CacheStats:
    """Cache-wide counters (per-process counts live in ``per_pid``)."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    consultations: int = 0
    overrules: int = 0
    swaps: int = 0
    prefetches: int = 0

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


@dataclass
class PidCounters:
    """Hit/miss accounting for one process."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0


@dataclass
class AccessOutcome:
    """What one block access requires of the caller.

    Attributes:
        hit: the block was resident (possibly still in flight).
        block: the (now-)resident block for this access.
        read_needed: the caller must issue a demand read and then call
            :meth:`BufferCache.loaded`.
        must_wait: the block is in flight from an earlier miss; the caller
            should park the process on ``block.waiters``.
        evicted: the block evicted to make room, if any; if it was dirty
            (``writeback`` True) the caller must write it out first.
    """

    hit: bool
    block: CacheBlock
    read_needed: bool = False
    must_wait: bool = False
    evicted: Optional[CacheBlock] = None

    @property
    def writeback(self) -> bool:
        return self.evicted is not None and self.evicted.dirty


class BufferCache:
    """The cache: ``nframes`` 8 KB buffers under an allocation policy."""

    def __init__(
        self,
        nframes: int,
        acm: Optional[ACM] = None,
        policy: AllocationPolicy = LRU_SP,
        clock: Optional[Callable[[], float]] = None,
        placeholder_limit: int = 4096,
    ) -> None:
        if nframes < 1:
            raise ValueError("cache needs at least one frame")
        self.nframes = nframes
        self.policy = policy
        self.acm = acm if acm is not None else ACM()
        self.acm.attach(self)
        self.clock = clock or (lambda: 0.0)
        self.global_list = LRUList()
        self.placeholders = PlaceholderTable(per_manager_limit=placeholder_limit)
        self.stats = CacheStats()
        self.per_pid: Dict[int, PidCounters] = {}
        self._blocks: Dict[BlockId, CacheBlock] = {}
        self._by_file: Dict[int, Dict[int, CacheBlock]] = {}
        #: optional repro.check.invariants.InvariantChecker; when attached
        #: it observes the semantic events below and sweeps the structures
        #: after every public operation.
        self.sanitizer = None
        #: optional repro.telemetry.Telemetry; same contract as the
        #: sanitizer — None means every hook below costs one attribute
        #: test.  Cache-wide counters are exported by a scrape-time
        #: collector reading ``stats``/``per_pid``; only spans and the
        #: consultation-latency histogram touch the access path.
        self.telemetry = None

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def resident(self) -> int:
        """Number of frames in use."""
        return len(self._blocks)

    def peek(self, file_id: int, blockno: int) -> Optional[CacheBlock]:
        """Look up a block without touching recency state."""
        return self._blocks.get((file_id, blockno))

    def blocks_of_file(self, file_id: int) -> List[CacheBlock]:
        """Resident blocks of one file (stable snapshot)."""
        return list(self._by_file.get(file_id, {}).values())

    def blocks_owned_by(self, pid: int) -> List[CacheBlock]:
        """Resident blocks currently owned by ``pid``."""
        return [b for b in self._blocks.values() if b.owner_pid == pid]

    def dirty_blocks(self) -> List[CacheBlock]:
        """All dirty resident blocks (the update daemon's worklist)."""
        return [b for b in self._blocks.values() if b.dirty and not b.in_flight]

    def occupancy(self) -> Dict[int, int]:
        """Frames currently held per process — the *allocation* LRU-SP
        manages.  (The paper measures this indirectly through ReadN's miss
        counts; the simulator can just look.)"""
        counts: Dict[int, int] = {}
        for block in self._blocks.values():
            counts[block.owner_pid] = counts.get(block.owner_pid, 0) + 1
        return counts

    def counters_for(self, pid: int) -> PidCounters:
        counters = self.per_pid.get(pid)
        if counters is None:
            counters = self.per_pid[pid] = PidCounters()
        return counters

    # -- the access path ------------------------------------------------------

    def access(
        self,
        pid: int,
        file_id: int,
        blockno: int,
        lba: int,
        disk: str,
        write: bool = False,
        whole: bool = False,
    ) -> AccessOutcome:
        """One block reference by process ``pid``.

        ``lba``/``disk`` say where the block lives on stable storage (the
        kernel resolves these through the filesystem before calling in).
        ``write``/``whole`` follow :class:`repro.sim.ops.BlockWrite`.
        """
        self.stats.accesses += 1
        counters = self.counters_for(pid)
        counters.accesses += 1
        bid = (file_id, blockno)
        block = self._blocks.get(bid)
        tel = self.telemetry
        span = None
        if tel is not None and tel.tracer is not None:
            span = tel.tracer.begin(
                "buf.access",
                layer="kernel",
                pid=pid,
                block=f"{file_id}:{blockno}",
                write=write,
            )

        if block is not None:
            self.stats.hits += 1
            counters.hits += 1
            if block.owner_pid != pid:
                self.acm.on_foreign_access(block, pid)
            self.global_list.move_to_mru(block)
            if self.sanitizer is not None:
                self.sanitizer.on_hit(block)
            self.acm.block_accessed(block)
            if write:
                if not block.dirty:
                    block.dirty = True
                    block.dirty_since = self.clock()
            if self.sanitizer is not None:
                self.sanitizer.verify("access", block)
            if span is not None:
                tel.tracer.finish(span, hit=True)
            return AccessOutcome(hit=True, block=block, must_wait=block.in_flight)

        # Miss: claim a frame (possibly evicting), then decide whether the
        # data must come from disk.
        self.stats.misses += 1
        counters.misses += 1
        evicted = None
        if len(self._blocks) >= self.nframes:
            try:
                evicted = self._replace(bid)
            except Exception:
                if span is not None:
                    tel.tracer.finish(span, error=True)
                raise
        home = self.acm.home_pid_for(pid, file_id)
        block = CacheBlock(file_id, blockno, lba=lba, disk=disk, owner_pid=home)
        needs_read = not (write and whole)
        block.in_flight = needs_read
        if write:
            block.dirty = True
            block.dirty_since = self.clock()
        self._install(block)
        if self.sanitizer is not None:
            self.sanitizer.verify("access", block)
        if span is not None:
            tel.tracer.finish(span, hit=False, read_needed=needs_read)
        return AccessOutcome(
            hit=False,
            block=block,
            read_needed=needs_read,
            evicted=evicted,
        )

    def prefetch(
        self,
        pid: int,
        file_id: int,
        blockno: int,
        lba: int,
        disk: str,
    ) -> Tuple[Optional[CacheBlock], Optional[CacheBlock]]:
        """Claim a frame for a read-ahead block.

        Returns ``(block, evicted)``: the in-flight block to load (None if
        already resident — nothing to do) and the victim displaced for it
        (which the caller must write back first if dirty).  Prefetches do
        not count as accesses and do not touch recency state of other
        blocks; they go through the normal replacement procedure to claim
        their frame.
        """
        bid = (file_id, blockno)
        if bid in self._blocks:
            return None, None
        self.stats.prefetches += 1
        evicted = None
        if len(self._blocks) >= self.nframes:
            evicted = self._replace(bid)
        home = self.acm.home_pid_for(pid, file_id)
        block = CacheBlock(file_id, blockno, lba=lba, disk=disk, owner_pid=home)
        block.in_flight = True
        self._install(block, referenced=False)
        if self.sanitizer is not None:
            self.sanitizer.verify("prefetch", block)
        return block, evicted

    def loaded(self, block: CacheBlock) -> List:
        """A demand read completed: clear in-flight, return parked waiters."""
        block.in_flight = False
        waiters = block.waiters
        block.waiters = []
        if self.sanitizer is not None:
            self.sanitizer.verify("loaded", block)
        return waiters

    def mark_clean(self, block: CacheBlock) -> None:
        """The update daemon wrote the block out."""
        block.dirty = False
        if self.sanitizer is not None:
            self.sanitizer.verify("mark_clean", block)

    def mark_dirty(self, block: CacheBlock) -> None:
        """Re-dirty a resident block whose writeback failed.

        The data in the frame is still newer than the (unwritten) disk
        copy, so the block re-enters the update daemon's worklist as if
        freshly modified.
        """
        if not block.dirty:
            block.dirty = True
            block.dirty_since = self.clock()
        if self.sanitizer is not None:
            self.sanitizer.verify("mark_dirty", block)

    def abort_load(self, block: CacheBlock) -> List:
        """A demand read failed for good: release the in-flight frame.

        The frame is freed through the normal eviction path with no
        write-back — the data never arrived, so there is nothing to save.
        Returns the parked waiters so the caller can resume them with the
        error.
        """
        block.in_flight = False
        block.dirty = False  # a write-miss frame holds no loaded data yet
        waiters = block.waiters
        block.waiters = []
        self._evict(block)
        if self.sanitizer is not None:
            self.sanitizer.verify("abort_load")
        return waiters

    def discard(self, block: CacheBlock) -> None:
        """Drop one resident block with *no* write-back.

        The replication layer's invalidation path: the block's data is
        known stale (a newer copy was acknowledged elsewhere) or has
        already travelled in a migration record, so writing it back would
        resurrect old bytes.  Dirty state is cleared first — a discard is
        an intentional forfeit, not a dirty eviction.
        """
        block.in_flight = False
        block.dirty = False
        block.waiters = []
        self._evict(block)
        if self.sanitizer is not None:
            self.sanitizer.verify("discard")

    def invalidate_file(self, file_id: int) -> List[CacheBlock]:
        """Drop a deleted file's blocks with *no* write-back.

        Returns the dropped blocks so the caller can resume any waiters on
        in-flight frames.
        """
        dropped = self.blocks_of_file(file_id)
        for block in dropped:
            self._evict(block)
        if self.sanitizer is not None:
            self.sanitizer.verify("invalidate_file")
        return dropped

    # -- the replacement procedure (the heart of LRU-SP) ------------------------

    def _replace(self, missing_id: BlockId) -> CacheBlock:
        """Free one frame for ``missing_id``; returns the evicted block."""
        candidate = None
        if self.policy.placeholders:
            entry = self.placeholders.consume(missing_id)
            if entry is not None and not entry.kept.in_flight:
                candidate = entry.kept
                self.acm.placeholder_used(entry.manager_pid, missing_id, entry.kept)
        if candidate is None:
            candidate = self._lru_candidate()

        chosen = candidate
        if self.policy.consult:
            self.stats.consultations += 1
            tel = self.telemetry
            if tel is None:
                chosen = self.acm.replace_block(candidate, missing_id)
            else:
                # Time the consultation in *wall* seconds (it is real CPU
                # spent in manager logic) and scope a span so injected
                # manager faults annotate this decision.  Span calls are
                # gated here rather than via tel.span() so the metrics-only
                # mode pays no kwargs construction per consultation.
                tracer = tel.tracer
                cspan = (
                    tracer.begin("acm.consult", layer="acm", pid=candidate.owner_pid)
                    if tracer is not None
                    else None
                )
                wall = tel.wall
                t0 = wall()
                try:
                    chosen = self.acm.replace_block(candidate, missing_id)
                finally:
                    tel.upcall_latency.observe(wall() - t0)
                    if cspan is not None:
                        tracer.finish(cspan, overruled=chosen is not candidate)
            if chosen.in_flight or not chosen.resident:
                # Defensive: a manager must hand back a replaceable block.
                chosen = candidate

        if chosen is not candidate:
            self.stats.overrules += 1
            if self.policy.swapping:
                if self.sanitizer is not None:
                    # The shadow model records the *intended* exchange; a
                    # swap the real list skips shows up in the next sweep.
                    self.sanitizer.on_swap(candidate, chosen)
                self.global_list.swap(candidate, chosen)
                self.stats.swaps += 1
            if self.policy.placeholders:
                self.placeholders.add(chosen.id, candidate, manager_pid=chosen.owner_pid)

        self._evict(chosen)
        return chosen

    def _lru_candidate(self) -> CacheBlock:
        """The global-LRU-end block, skipping frames pinned by reads."""
        node = self.global_list.lru
        while node is not None and node.in_flight:
            node = self.global_list.next_toward_mru(node)
        if node is None:
            raise CacheFullError("all frames are in flight; cannot replace")
        return node

    # -- internals ----------------------------------------------------------

    def _install(self, block: CacheBlock, referenced: bool = True) -> None:
        self._blocks[block.id] = block
        self._by_file.setdefault(block.file_id, {})[block.blockno] = block
        self.global_list.push_mru(block)
        if self.sanitizer is not None:
            self.sanitizer.on_install(block)
        self.acm.new_block(block, referenced=referenced)
        # The block is back in the cache: any placeholder for it is moot.
        self.placeholders.drop_for_missing(block.id)

    def _evict(self, block: CacheBlock) -> None:
        self.stats.evictions += 1
        if block.dirty:
            self.stats.dirty_evictions += 1
        self.global_list.remove(block)
        if self.sanitizer is not None:
            self.sanitizer.on_evict(block)
        self.acm.block_gone(block)
        self.placeholders.drop_for_kept(block)
        del self._blocks[block.id]
        per_file = self._by_file.get(block.file_id)
        if per_file is not None:
            per_file.pop(block.blockno, None)
            if not per_file:
                del self._by_file[block.file_id]
        block.resident = False

    def check_invariants(self) -> None:
        """Internal-consistency assertions (used heavily by tests)."""
        assert len(self._blocks) <= self.nframes, "over-committed frames"
        assert len(self.global_list) == len(self._blocks), "global list out of sync"
        per_file_total = sum(len(d) for d in self._by_file.values())
        assert per_file_total == len(self._blocks), "file index out of sync"
        for block in self._blocks.values():
            assert block.resident
            assert block in self.global_list
            if block.pool_prio is not None:
                m = self.acm.managers.get(block.owner_pid)
                assert m is not None, "pooled block with no manager"
                pool = m.pools.get(block.pool_prio)
                assert pool is not None and block in pool.blocks, "pool membership broken"
