"""The fbehavior syscall layer."""

import pytest

from conftest import make_cache, touch
from repro.core.acm import ACM
from repro.core.interface import FBehaviorError, FBehaviorOp, fbehavior
from repro.core.policies import PoolPolicy
from repro.fs.filesystem import SimFilesystem


@pytest.fixture
def env():
    fs = SimFilesystem({"disk0": 10000})
    fs.create("data", size_blocks=10)
    fs.create("index", size_blocks=5)
    acm = ACM()
    cache = make_cache(nframes=16, acm=acm)
    return fs, acm, cache


def call(env, pid, op, *args):
    fs, acm, _ = env
    return fbehavior(acm, fs, pid, op, tuple(args))


class TestDispatch:
    def test_set_then_get_priority(self, env):
        call(env, 1, FBehaviorOp.SET_PRIORITY, "data", 2)
        assert call(env, 1, FBehaviorOp.GET_PRIORITY, "data") == 2

    def test_default_priority_is_zero(self, env):
        assert call(env, 1, FBehaviorOp.GET_PRIORITY, "data") == 0

    def test_set_then_get_policy(self, env):
        call(env, 1, FBehaviorOp.SET_POLICY, 0, "mru")
        assert call(env, 1, FBehaviorOp.GET_POLICY, 0) is PoolPolicy.MRU

    def test_default_policy_is_lru(self, env):
        assert call(env, 1, FBehaviorOp.GET_POLICY, 0) is PoolPolicy.LRU

    def test_priorities_are_per_process(self, env):
        call(env, 1, FBehaviorOp.SET_PRIORITY, "data", 2)
        assert call(env, 2, FBehaviorOp.GET_PRIORITY, "data") == 0

    def test_first_set_registers_manager(self, env):
        fs, acm, _ = env
        assert acm.manager(1) is None
        call(env, 1, FBehaviorOp.SET_POLICY, 0, "mru")
        assert acm.manager(1) is not None

    def test_get_does_not_register(self, env):
        fs, acm, _ = env
        call(env, 1, FBehaviorOp.GET_PRIORITY, "data")
        assert acm.manager(1) is None

    def test_unknown_file_fails(self, env):
        with pytest.raises(FBehaviorError):
            call(env, 1, FBehaviorOp.SET_PRIORITY, "missing", 1)

    def test_raw_file_id_accepted(self, env):
        fs, acm, _ = env
        fid = fs.lookup("data").file_id
        call(env, 1, FBehaviorOp.SET_PRIORITY, fid, 3)
        assert call(env, 1, FBehaviorOp.GET_PRIORITY, "data") == 3

    def test_bad_policy_string_fails(self, env):
        with pytest.raises(FBehaviorError):
            call(env, 1, FBehaviorOp.SET_POLICY, 0, "fifo")

    def test_wrong_arity_fails(self, env):
        with pytest.raises(FBehaviorError):
            call(env, 1, FBehaviorOp.SET_PRIORITY, "data")

    def test_temppri_range_validated(self, env):
        with pytest.raises(FBehaviorError):
            call(env, 1, FBehaviorOp.SET_TEMPPRI, "data", 5, 2, -1)


class TestSemantics:
    def test_set_priority_moves_resident_blocks(self, env):
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        acm.register(1)
        touch(cache, 1, fid, 0)
        touch(cache, 1, fid, 1)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_PRIORITY, ("data", 2))
        for b in cache.blocks_of_file(fid):
            assert b.pool_prio == 2

    def test_set_priority_leaves_other_owners_alone(self, env):
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        acm.register(1)
        acm.register(2)
        touch(cache, 2, fid, 0)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_PRIORITY, ("data", 2))
        assert cache.peek(fid, 0).pool_prio == 0

    def test_set_temppri_affects_only_range(self, env):
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        acm.register(1)
        for b in range(4):
            touch(cache, 1, fid, b)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_TEMPPRI, ("data", 1, 2, -1))
        prios = {b.blockno: b.pool_prio for b in cache.blocks_of_file(fid)}
        assert prios == {0: 0, 1: -1, 2: -1, 3: 0}
        assert cache.peek(fid, 1).has_temp

    def test_set_temppri_only_resident_blocks(self, env):
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        acm.register(1)
        touch(cache, 1, fid, 0)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_TEMPPRI, ("data", 0, 9, -1))
        # Block 5 was never cached; loading it later uses long-term prio.
        touch(cache, 1, fid, 5)
        assert cache.peek(fid, 5).pool_prio == 0

    def test_temp_priority_reverts_on_reference(self, env):
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        acm.register(1)
        touch(cache, 1, fid, 0)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_TEMPPRI, ("data", 0, 0, -1))
        assert cache.peek(fid, 0).pool_prio == -1
        touch(cache, 1, fid, 0)
        block = cache.peek(fid, 0)
        assert block.pool_prio == 0
        assert not block.has_temp

    def test_temp_priority_reverts_to_long_term(self, env):
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        acm.register(1)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_PRIORITY, ("data", 2))
        touch(cache, 1, fid, 0)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_TEMPPRI, ("data", 0, 0, -1))
        touch(cache, 1, fid, 0)
        assert cache.peek(fid, 0).pool_prio == 2

    def test_freed_block_is_replaced_first(self, env):
        """The done-with idiom: set_temppri -1 makes a block the next victim."""
        fs, acm, cache = env
        fid = fs.lookup("data").file_id
        small = make_cache(nframes=3, acm=acm)
        acm.attach(small)
        acm.register(1)
        for b in range(3):
            touch(small, 1, fid, b)
        fbehavior(acm, fs, 1, FBehaviorOp.SET_TEMPPRI, ("data", 1, 1, -1))
        touch(small, 1, fid, 3)
        assert small.peek(fid, 1) is None          # the freed block went
        assert small.peek(fid, 0) is not None      # older blocks survived
