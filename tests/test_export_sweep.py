"""CSV/JSON export and the sweep utilities."""

import json

import pytest

from repro.harness.experiments import MixResult, SingleAppResult
from repro.harness.export import rows_from_grid, save, to_csv, to_json
from repro.harness.sweep import cache_size_sweep, policy_zoo_sweep


@pytest.fixture
def grid():
    return {
        "din": {
            6.4: SingleAppResult("din", 6.4, 100, 1000, 90, 290),
            8.0: SingleAppResult("din", 8.0, 99, 998, 99, 1003),
        },
        "cs1": {
            6.4: SingleAppResult("cs1", 6.4, 62, 9000, 36, 3300),
        },
    }


class TestExport:
    def test_rows_from_grid(self, grid):
        rows = rows_from_grid(grid, key_names=("app", "cache_mb"))
        assert len(rows) == 3
        din = next(r for r in rows if r["app"] == "din" and r["cache_mb"] == 6.4)
        assert din["orig_ios"] == 1000
        assert din["io_ratio"] == pytest.approx(0.29)

    def test_to_csv_roundtrips_columns(self, grid):
        text = to_csv(rows_from_grid(grid, key_names=("app", "cache_mb")))
        lines = text.strip().splitlines()
        header = lines[0].split(",")
        assert "app" in header and "io_ratio" in header
        assert len(lines) == 4  # header + 3 rows

    def test_to_csv_empty(self):
        assert to_csv([]) == ""

    def test_to_csv_union_of_columns(self):
        text = to_csv([{"a": 1}, {"a": 2, "b": 3}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,"

    def test_to_json_dataclasses(self, grid):
        text = to_json(grid["din"][6.4])
        payload = json.loads(text)
        assert payload["orig_ios"] == 1000

    def test_to_json_rejects_unknown(self):
        with pytest.raises(TypeError):
            to_json(object())

    def test_save(self, tmp_path):
        path = str(tmp_path / "out.csv")
        save("a,b\n1,2\n", path)
        with open(path) as f:
            assert f.read() == "a,b\n1,2\n"

    def test_mix_rows(self):
        grid = {"a+b": {6.4: MixResult("a+b", 6.4, 10, 100, 9, 90)}}
        rows = rows_from_grid(grid, key_names=("mix", "cache_mb"))
        assert rows[0]["io_ratio"] == pytest.approx(0.9)


class TestSweeps:
    def test_cache_size_sweep_shapes(self):
        points = cache_size_sweep(
            "din", [0.5, 1.0, 2.0],
            trace_blocks=150, passes=3, cpu_per_block=0.001,
        )
        assert [p.cache_mb for p in points] == [0.5, 1.0, 2.0]
        # Smart dinero's I/O ratio improves (or stays 1.0) monotonically
        # until the trace fits, then snaps to parity.
        assert points[0].io_ratio < 1.0
        assert points[-1].io_ratio == pytest.approx(1.0, abs=0.05)

    def test_policy_zoo_sweep_contains_bounds(self):
        misses = policy_zoo_sweep(
            "din", 64, trace_blocks=100, passes=3, cpu_per_block=0.0,
        )
        assert "opt" in misses and "lru-sp" in misses and "lru" in misses
        assert misses["opt"] <= min(v for k, v in misses.items() if k != "opt")

    def test_policy_zoo_lru_sp_uses_directives(self):
        misses = policy_zoo_sweep(
            "din", 64, trace_blocks=100, passes=3, cpu_per_block=0.0,
        )
        # The MRU directive makes LRU-SP track the mru policy, not lru.
        assert misses["lru-sp"] == misses["mru"]
        assert misses["lru-sp"] < misses["lru"]

    def test_policy_zoo_subset(self):
        misses = policy_zoo_sweep(
            "din", 64, policies=["fifo"], include_opt=False, include_lru_sp=False,
            trace_blocks=50, passes=2, cpu_per_block=0.0,
        )
        assert set(misses) == {"fifo"}
