"""Workload generators: shapes, counts, and directive prologues."""

import pytest

from repro.core.interface import FBehaviorOp
from repro.sim.ops import BlockRead, BlockWrite, Compute, Control, CreateFile, DeleteFile
from repro.workloads import (
    Dinero,
    ExternalSort,
    Glimpse,
    LinkEditor,
    PostgresJoin,
    ReadN,
    make_cs1,
    make_cs2,
    make_cs3,
)
from repro.workloads.base import FileSpec, seq_read, seq_write
from repro.workloads.readn import ReadNBehavior
from repro.workloads.registry import WORKLOADS, make_workload


def ops_of(workload):
    return list(workload.program())


def reads(ops):
    return [op for op in ops if isinstance(op, BlockRead)]


def writes(ops):
    return [op for op in ops if isinstance(op, BlockWrite)]


def controls(ops):
    return [op for op in ops if isinstance(op, Control)]


class TestHelpers:
    def test_seq_read_order(self):
        ops = list(seq_read("f", 3, 0.0))
        assert [op.blockno for op in ops] == [0, 1, 2]

    def test_seq_read_with_cpu_interleaves(self):
        ops = list(seq_read("f", 2, 0.01))
        assert isinstance(ops[0], BlockRead) and isinstance(ops[1], Compute)

    def test_seq_read_free_behind_emits_temppri(self):
        ops = list(seq_read("f", 2, 0.0, free_behind=True))
        temps = [op for op in ops if isinstance(op, Control)]
        assert len(temps) == 2
        assert temps[0].op is FBehaviorOp.SET_TEMPPRI
        assert temps[0].args == ("f", 0, 0, -1)

    def test_seq_write_whole_blocks(self):
        ops = list(seq_write("f", 3))
        assert all(op.whole for op in ops)

    def test_file_spec_validation(self):
        with pytest.raises(ValueError):
            FileSpec("x", 0)


class TestDinero:
    def test_access_count(self):
        din = Dinero()
        assert len(reads(ops_of(din))) == din.passes * din.trace_blocks

    def test_smart_prologue(self):
        ctl = controls(ops_of(Dinero(smart=True)))
        assert [c.op for c in ctl] == [FBehaviorOp.SET_PRIORITY, FBehaviorOp.SET_POLICY]
        assert ctl[1].args == (0, "mru")

    def test_oblivious_has_no_directives(self):
        assert controls(ops_of(Dinero(smart=False))) == []

    def test_cyclic_pattern(self):
        din = Dinero(trace_blocks=5, passes=2)
        assert [op.blockno for op in reads(ops_of(din))] == [0, 1, 2, 3, 4] * 2

    def test_file_specs(self):
        din = Dinero()
        (spec,) = din.file_specs()
        assert spec.nblocks == 998


class TestCscope:
    def test_cs1_scans_database(self):
        cs1 = make_cs1()
        rs = reads(ops_of(cs1))
        assert len(rs) == 8 * 1141
        assert all(op.path == cs1.db_path for op in rs)

    def test_cs2_total_blocks_per_query(self):
        cs2 = make_cs2()
        rs = reads(ops_of(cs2))
        assert len(rs) == cs2.queries * cs2.total_blocks

    def test_cs2_same_order_every_query(self):
        cs2 = make_cs2(total_blocks=50, nfiles=5, queries=2)
        rs = reads(ops_of(cs2))
        per_query = len(rs) // 2
        assert [(op.path, op.blockno) for op in rs[:per_query]] == [
            (op.path, op.blockno) for op in rs[per_query:]
        ]

    def test_cs3_is_smaller(self):
        assert make_cs3().total_blocks < make_cs2().total_blocks

    def test_cs_text_sizes_sum_exactly(self):
        cs2 = make_cs2()
        assert sum(s.nblocks for s in cs2.file_specs()) == cs2.total_blocks

    def test_cs_text_deterministic_sizes(self):
        assert make_cs2()._sizes == make_cs2()._sizes

    def test_smart_prologue_single_policy_call(self):
        ctl = controls(ops_of(make_cs2()))
        assert len(ctl) == 1
        assert ctl[0].args == (0, "mru")


class TestGlimpse:
    def test_index_files_first_every_query(self):
        gli = Glimpse()
        rs = reads(ops_of(gli))
        # first 250 reads of each query are the index files
        per_query = len(rs) // gli.queries
        first = rs[:250]
        assert all(".glimpse" in op.path for op in first)
        second_query = rs[per_query : per_query + 250]
        assert all(".glimpse" in op.path for op in second_query)

    def test_partition_subsets_differ_across_queries(self):
        gli = Glimpse()
        assert len({tuple(q) for q in gli._query_sets}) > 1

    def test_hot_partitions_in_every_query(self):
        gli = Glimpse()
        shared = set.intersection(*(set(q) for q in gli._query_sets))
        assert len(shared) >= gli.hot_partitions

    def test_partitions_scanned_in_order(self):
        gli = Glimpse()
        for q in gli._query_sets:
            assert q == sorted(q)

    def test_smart_prologue_sets_index_priority(self):
        ctl = controls(ops_of(Glimpse()))
        prios = [c for c in ctl if c.op is FBehaviorOp.SET_PRIORITY]
        assert len(prios) == 4
        assert all(c.args[1] == 1 for c in prios)
        policies = [c for c in ctl if c.op is FBehaviorOp.SET_POLICY]
        assert {c.args for c in policies} == {(1, "mru"), (0, "mru")}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            Glimpse(hot_partitions=10, partitions_per_query=5)
        with pytest.raises(ValueError):
            Glimpse(partitions_per_query=99)


class TestLinkEditor:
    def test_two_passes(self):
        ldk = LinkEditor()
        rs = reads(ops_of(ldk))
        sym = sum(ldk.symbol_blocks(i) for i in range(ldk.nobjects))
        assert len(rs) == sym + ldk.total_blocks

    def test_output_written_fully(self):
        ldk = LinkEditor()
        ws = writes(ops_of(ldk))
        assert len(ws) == ldk.output_blocks
        assert {op.blockno for op in ws} == set(range(ldk.output_blocks))

    def test_free_behind_only_when_smart(self):
        assert controls(ops_of(LinkEditor(smart=False))) == []
        smart_ctl = controls(ops_of(LinkEditor(smart=True)))
        assert len(smart_ctl) == LinkEditor().total_blocks

    def test_object_sizes_sum(self):
        ldk = LinkEditor()
        assert sum(ldk._sizes) == ldk.total_blocks

    def test_creates_output_file(self):
        ops = ops_of(LinkEditor())
        assert isinstance(ops[0], CreateFile)


class TestPostgres:
    def test_outer_scanned_sequentially(self):
        pjn = PostgresJoin(outer_blocks=5, tuples_per_block=2)
        outer = [op.blockno for op in reads(ops_of(pjn)) if op.path == pjn.outer_path]
        assert outer == [0, 1, 2, 3, 4]

    def test_probe_count(self):
        pjn = PostgresJoin(outer_blocks=10, tuples_per_block=3)
        root_reads = [
            op for op in reads(ops_of(pjn)) if op.path == pjn.index_path and op.blockno == 0
        ]
        assert len(root_reads) == 30

    def test_match_rate_about_one_fifth(self):
        pjn = PostgresJoin()
        data_reads = [op for op in reads(ops_of(pjn)) if op.path == pjn.data_path]
        probes = pjn.outer_blocks * pjn.tuples_per_block
        assert 0.15 < len(data_reads) / probes < 0.25

    def test_deterministic_given_seed(self):
        a = [(op.path, op.blockno) for op in reads(ops_of(PostgresJoin(seed=7)))]
        b = [(op.path, op.blockno) for op in reads(ops_of(PostgresJoin(seed=7)))]
        assert a == b

    def test_smart_prologue(self):
        ctl = controls(ops_of(PostgresJoin()))
        assert len(ctl) == 1
        assert ctl[0].op is FBehaviorOp.SET_PRIORITY
        assert ctl[0].args[1] == 1


class TestSort:
    def test_run_count(self):
        srt = ExternalSort(input_blocks=20, run_blocks=8)
        ops = ops_of(srt)
        creates = [op for op in ops if isinstance(op, CreateFile)]
        # 3 runs (8+8+4) + 1 final output
        assert len(creates) == 4

    def test_io_totals(self):
        srt = ExternalSort()
        ops = ops_of(srt)
        total = len(reads(ops)) + len(writes(ops))
        # paper's sort does ~14,670 block I/Os; the generator is sized to it
        assert 13000 <= total <= 15500

    def test_input_read_once(self):
        srt = ExternalSort(input_blocks=32, run_blocks=8)
        in_reads = [op for op in reads(ops_of(srt)) if op.path == srt.input_path]
        assert sorted(op.blockno for op in in_reads) == list(range(32))

    def test_temps_deleted(self):
        srt = ExternalSort(input_blocks=32, run_blocks=8)
        ops = ops_of(srt)
        deletes = [op for op in ops if isinstance(op, DeleteFile)]
        creates = [op for op in ops if isinstance(op, CreateFile)]
        assert len(deletes) == len(creates) - 1  # all but the output

    def test_cascaded_merge_consumes_everything(self):
        srt = ExternalSort(input_blocks=100, run_blocks=4, merge_width=3)
        ops = ops_of(srt)
        out_writes = [op for op in writes(ops) if op.path == srt.output_path]
        assert len(out_writes) == 100

    def test_smart_prologue(self):
        ctl = controls(ops_of(ExternalSort(input_blocks=8, run_blocks=8)))
        heads = [c for c in ctl if c.op is not FBehaviorOp.SET_TEMPPRI]
        assert [c.args for c in heads] == [(-1, "mru"), (0, "mru"), ("sort/input.txt", -1)]

    def test_oblivious_emits_no_controls(self):
        assert controls(ops_of(ExternalSort(smart=False, input_blocks=8, run_blocks=8))) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ExternalSort(run_blocks=0)
        with pytest.raises(ValueError):
            ExternalSort(merge_width=1)


class TestReadN:
    def test_group_structure(self):
        rn = ReadN(n=3, file_blocks=7, repeats=2)
        blocknos = [op.blockno for op in reads(ops_of(rn))]
        assert blocknos == [0, 1, 2] * 2 + [3, 4, 5] * 2 + [6] * 2

    def test_total_accesses(self):
        rn = ReadN(n=300, file_blocks=1310, repeats=5)
        assert len(reads(ops_of(rn))) == 5 * 1310

    def test_oblivious_by_default(self):
        rn = ReadN(n=10, file_blocks=10)
        assert rn.behavior is ReadNBehavior.OBLIVIOUS
        assert controls(ops_of(rn)) == []

    def test_foolish_registers_mru(self):
        rn = ReadN(n=10, file_blocks=10, behavior="foolish")
        ctl = controls(ops_of(rn))
        assert ctl[0].args == (0, "mru")

    def test_smart_registers_lru(self):
        rn = ReadN(n=10, file_blocks=10, behavior=ReadNBehavior.SMART)
        ctl = controls(ops_of(rn))
        assert ctl[0].args == (0, "lru")

    def test_default_name_from_n(self):
        assert ReadN(n=300).name == "read300"

    def test_bad_n(self):
        with pytest.raises(ValueError):
            ReadN(n=0)


class TestRegistry:
    def test_all_kinds_buildable(self):
        for kind in WORKLOADS:
            wl = make_workload(kind)
            assert wl.file_specs()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_workload("tetris")

    def test_names_are_namespaced(self):
        a = make_workload("din", name="din-a")
        b = make_workload("din", name="din-b")
        assert a.file_specs()[0].path != b.file_specs()[0].path

    def test_paper_disk_placement(self):
        assert make_workload("cs1").disk == "RZ56"
        assert make_workload("gli").disk == "RZ56"
        assert make_workload("ldk").disk == "RZ56"
        assert make_workload("pjn").disk == "RZ26"
        assert make_workload("sort").disk == "RZ26"

    def test_readn_behavior_passthrough(self):
        rn = make_workload("readn", n=5, file_blocks=5, behavior="foolish")
        assert rn.behavior is ReadNBehavior.FOOLISH

    def test_readn_smart_flag_maps(self):
        rn = make_workload("readn", smart=True, n=5, file_blocks=5)
        assert rn.behavior is ReadNBehavior.SMART


class TestCscopeMixed:
    def _ops(self, **kwargs):
        from repro.workloads import CscopeMixed

        return ops_of(CscopeMixed(**kwargs))

    def test_plan_parsing(self):
        from repro.workloads import CscopeMixed

        wl = CscopeMixed(plan="s t s")
        assert wl.plan == ["s", "t", "s"]
        with pytest.raises(ValueError):
            CscopeMixed(plan="xyz")

    def test_symbol_queries_read_database(self):
        from repro.workloads import CscopeMixed

        wl = CscopeMixed(plan="s", db_blocks=10, source_blocks=20, nfiles=4)
        rs = reads(wl.program() and ops_of(wl))
        assert all(op.path == wl.db_path for op in rs)
        assert len(rs) == 10

    def test_text_queries_read_sources(self):
        from repro.workloads import CscopeMixed

        wl = CscopeMixed(plan="t", db_blocks=10, source_blocks=20, nfiles=4)
        rs = reads(ops_of(wl))
        assert all(op.path != wl.db_path for op in rs)
        assert len(rs) == 20

    def test_dynamic_repri_raises_and_lowers(self):
        from repro.workloads import CscopeMixed

        wl = CscopeMixed(plan="st", db_blocks=5, source_blocks=10, nfiles=2, dynamic=True)
        prios = [
            c.args for c in controls(ops_of(wl))
            if c.op is FBehaviorOp.SET_PRIORITY and c.args[0] == wl.db_path
        ]
        assert (wl.db_path, 1) in prios     # raised before the symbol query
        assert (wl.db_path, -1) in prios    # lowered before the text query

    def test_static_variant_never_touches_db_priority(self):
        from repro.workloads import CscopeMixed

        wl = CscopeMixed(plan="st", db_blocks=5, source_blocks=10, nfiles=2, dynamic=False)
        prio_calls = [c for c in controls(ops_of(wl)) if c.op is FBehaviorOp.SET_PRIORITY]
        assert prio_calls == []

    def test_oblivious_variant_silent(self):
        from repro.workloads import CscopeMixed

        wl = CscopeMixed(plan="st", smart=False, db_blocks=5, source_blocks=10, nfiles=2)
        assert controls(ops_of(wl)) == []

    def test_registry_knows_csm(self):
        wl = make_workload("csm")
        assert wl.kind == "csm"
