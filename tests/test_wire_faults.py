"""Batching and pipelining under transport faults.

The binary wire path must not weaken any recovery guarantee the JSON
path earned: ``readv`` (a pure read) is auto-retried after a timeout,
``writev`` never is (the batch may already be applied — a silent
duplicate is exactly the hazard the idempotent-verbs list exists to
prevent), a reconnect renegotiates the wire *and* resumes the same
kernel pid, and a daemon crash-restart loses no acknowledged write.

Also here: the stale-reply correlation regression.  Reply matching is
per-connection — a reply surfacing on a dead transport's reader may only
touch that connection's pending map, never a future registered after the
reconnect, even when the request ids collide.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

import pytest

from repro.cluster import ClusterClient, ClusterSupervisor
from repro.faults import FaultPlan
from repro.server import CacheClient, CacheDaemon, ServerError, build_config
from repro.server.client import RequestTimeout, RetryPolicy
from repro.server.protocol import WIRE_BINARY, Transport


def run(coro):
    return asyncio.run(coro)


PATIENT = RetryPolicy(timeout_s=0.25, max_retries=8, backoff_base_s=0.005)


# -- batched verbs on the idempotency boundary -----------------------------


class TestBatchedIdempotency:
    def test_readv_is_auto_retried(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon,
                wire=WIRE_BINARY,
                retry=RetryPolicy(timeout_s=0.1, max_retries=5, backoff_base_s=0.01),
            )
            await client.open("f", size_blocks=4)
            daemon.pause()
            asyncio.get_running_loop().call_later(0.15, daemon.resume)
            results = await client.readv([("f", 0), ("f", 1), ("f", 2)])
            # The retried duplicate may see hits the first (applied but
            # unanswered) attempt faulted in — either is a correct batch.
            assert [set(r) for r in results] == [{"hit"}] * 3
            assert client.retries >= 1
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())

    def test_writev_never_auto_retried(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon,
                wire=WIRE_BINARY,
                retry=RetryPolicy(timeout_s=0.05, max_retries=5, backoff_base_s=0.01),
            )
            await client.open("f", size_blocks=4)
            daemon.pause()
            with pytest.raises(RequestTimeout):
                await client.writev([("f", 0), ("f", 1)])
            assert client.retries == 0  # non-idempotent: no silent duplicate
            daemon.resume()
            await asyncio.sleep(0.05)  # the queued frame applies exactly once
            stats = await client.stats()
            assert stats["cache"]["accesses"] == 2  # one application, not two
            assert stats["cache"]["dirty_blocks"] == 2
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())


# -- pipelining through a lossy transport ----------------------------------


class TestPipelineUnderFaults:
    DROPPY = FaultPlan(seed=21, drop_frame_rate=0.08)

    def test_pipelined_reads_survive_frame_drops(self):
        async def go():
            daemon = CacheDaemon(
                build_config(cache_mb=1, sanitize=True, faults=self.DROPPY)
            )
            client = await CacheClient.connect_inproc(
                daemon, wire=WIRE_BINARY, retry=PATIENT
            )
            assert client.wire == WIRE_BINARY
            await client.open("f", size_blocks=32)
            calls = [
                ("read", {"path": "f", "blockno": i % 32}) for i in range(96)
            ]
            results = await client.pipeline(calls, depth=8)
            assert len(results) == 96
            assert all(
                isinstance(r, dict) and "hit" in r for r in results
            ), results
            # With this seed frames really were dropped and retried.
            assert client.retries >= 1
            # A second pass is all hits, and in call order.
            again = await client.pipeline(calls, depth=8)
            assert [r["hit"] for r in again] == [True] * 96
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())

    def test_pipelined_batches_survive_frame_drops(self):
        async def go():
            daemon = CacheDaemon(
                build_config(cache_mb=1, sanitize=True, faults=self.DROPPY)
            )
            client = await CacheClient.connect_inproc(
                daemon, wire=WIRE_BINARY, retry=PATIENT
            )
            await client.open("f", size_blocks=48)
            calls = [
                (
                    "readv",
                    {
                        "ops": [
                            {"path": "f", "blockno": (8 * chunk + i) % 48}
                            for i in range(8)
                        ]
                    },
                )
                for chunk in range(16)
            ]
            results = await client.pipeline(calls, depth=4)
            for value in results:
                assert isinstance(value, dict), value
                assert [set(r) for r in value["results"]] == [{"hit"}] * 8
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())

    def test_partial_batch_errors_match_faultless_run(self):
        ops = [("f", 0), ("f", 99), ("missing", 0), ("f", 1)]

        async def codes(faults: Optional[FaultPlan]):
            daemon = CacheDaemon(build_config(cache_mb=0.5, faults=faults))
            client = await CacheClient.connect_inproc(
                daemon, wire=WIRE_BINARY, retry=PATIENT
            )
            await client.open("f", size_blocks=4)
            results = await client.readv(ops)
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []
            return [r.get("code", "OK") for r in results]

        faulty = run(codes(self.DROPPY))
        clean = run(codes(None))
        assert faulty == clean == ["OK", "FS", "FS", "OK"]


# -- reconnect: renegotiation + resume -------------------------------------


class TestReconnect:
    def test_reconnect_renegotiates_binary_and_resumes_pid(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon, name="phoenix", wire=WIRE_BINARY, retry=PATIENT
            )
            assert client.wire == WIRE_BINARY
            await client.open("f", size_blocks=4)
            await client.write("f", 2, whole=True)
            pid = client.pid
            client._transport.close()  # sever the wire mid-session
            await asyncio.sleep(0)
            # First retried call redials, re-hellos (offering binary
            # again) and resumes the pid; the acked write is still there.
            results = await client.readv([("f", 2)])
            assert results == [{"hit": True}]
            assert client.wire == WIRE_BINARY  # renegotiated, not stuck on JSON
            assert client.pid == pid
            assert client.reconnects == 1
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())


# -- crash-restart: no acked write lost ------------------------------------


class TestRestart:
    def test_acked_batch_writes_survive_daemon_restart(self):
        async def go():
            sup = ClusterSupervisor(shards=1, cache_mb=1)
            await sup.start()
            (sid,) = sup.ring.shards
            cc = await ClusterClient.connect(
                sup, name="writer", retry=PATIENT, wire=WIRE_BINARY
            )
            client = cc.clients[sid]
            assert client.wire == WIRE_BINARY
            pid = client.pid
            await cc.open("/f.dat", size_blocks=16)
            acked = []
            for start in (0, 4, 8):
                while True:
                    try:
                        results = await cc.writev(
                            [("/f.dat", start + i, True) for i in range(4)]
                        )
                    except (ConnectionError, RequestTimeout, ServerError):
                        await asyncio.sleep(0.01)
                        continue
                    if all("hit" in r for r in results):
                        acked.extend(start + i for i in range(4))
                        break
                if start == 4:  # crash-stop mid-workload, then fail over
                    await sup.kill(sid)
                    await sup.restart(sid)
            # Every acknowledged write is readable after the restart; the
            # replacement daemon resumed the same kernel pid and the
            # client renegotiated the binary wire on redial.
            results = await cc.readv([("/f.dat", b) for b in acked])
            assert [r.get("hit") for r in results] == [True] * len(acked)
            assert client.pid == pid
            assert client.wire == WIRE_BINARY
            assert client.reconnects >= 1
            assert sup.daemon_of(sid).errors == []
            await cc.aclose()
            await sup.aclose()

        run(go())


# -- the stale-reply correlation regression --------------------------------


class _ScriptedTransport(Transport):
    """Replays a fixed list of inbound replies, then EOF."""

    def __init__(self, replies):
        self._replies = list(replies)
        self._closed = False

    async def recv(self) -> Optional[Dict[str, Any]]:
        if self._replies:
            return self._replies.pop(0)
        return None

    async def send(self, msg: Dict[str, Any]) -> None:  # pragma: no cover
        raise AssertionError("reader-side stub")

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class TestReplyCorrelation:
    def test_stale_reply_cannot_resolve_a_new_connections_future(self):
        """A reply draining from a pre-reconnect transport must only touch
        that connection's pending map — even when the request id collides
        with one in flight on the replacement connection."""

        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon, wire=WIRE_BINARY)
            loop = asyncio.get_running_loop()

            stale = {"id": 7, "ok": True, "value": "stale"}
            old_pending = {7: loop.create_future(), 8: loop.create_future()}
            old_transport = _ScriptedTransport([stale])

            fresh = loop.create_future()
            client._pending[7] = fresh  # same id, new connection

            await client._read_replies(old_transport, old_pending)

            # The stale reply landed on the old map's future only...
            assert old_pending == {}
            assert fresh is client._pending[7] and not fresh.done()
            # ... the old connection's leftovers failed cleanly ...
            assert old_transport.closed
            # ... and the live connection still answers normally.
            client._pending.pop(7).cancel()
            await client.open("f", size_blocks=2)
            assert await client.read("f", 0) is False
            await client.aclose()
            await daemon.aclose()

        run(go())


# -- the acceptance chaos run ----------------------------------------------


CHAOS = FaultPlan(
    seed=5,
    drop_frame_rate=0.03,
    garble_frame_rate=0.01,
    slow_loris_rate=0.02,
    slow_loris_s=0.001,
)


class TestChaosBatchedRun:
    def test_batched_pipelined_workload_survives_transport_chaos(self):
        async def go():
            daemon = CacheDaemon(
                build_config(cache_mb=1, sanitize=True, faults=CHAOS)
            )
            clients = [
                await CacheClient.connect_inproc(
                    daemon, name=f"c{i}", wire=WIRE_BINARY, retry=PATIENT
                )
                for i in range(3)
            ]

            async def reissue_writev(client, ops):
                while True:
                    try:
                        results = await client.writev(ops)
                    except (ConnectionError, RequestTimeout, ServerError):
                        # Whole-block writes are idempotent at the
                        # application level; the *caller* may re-issue.
                        await asyncio.sleep(0.005)
                        continue
                    if all("hit" in r for r in results):
                        return

            async def workload(idx, client):
                path = f"file{idx}"
                await client.open(path, size_blocks=24)
                for round_no in range(4):
                    await reissue_writev(
                        client, [(path, b, True) for b in range(0, 24, 2)]
                    )
                    hits = await client.read_many(path, range(24), batch=8)
                    assert len(hits) == 24
                    calls = [
                        ("read", {"path": path, "blockno": (b * 5) % 24})
                        for b in range(32)
                    ]
                    for value in await client.pipeline(calls, depth=6):
                        assert isinstance(value, dict) and "hit" in value, value

            await asyncio.gather(
                *(workload(i, c) for i, c in enumerate(clients, start=1))
            )

            stats = await clients[0].stats()
            assert stats["faults"]["injected_total"] > 0
            for client in clients:
                await client.aclose()
            summary = await daemon.aclose()
            assert summary["flushed_blocks"] > 0  # dirty blocks all made disk
            assert len(daemon.service.cache.dirty_blocks()) == 0
            checker = daemon.service.cache.sanitizer
            assert checker is not None
            checker.check_now("chaos-final")
            assert daemon.errors == []

        run(go())
