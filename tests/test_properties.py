"""Property-based tests of the paper's algorithmic contracts."""

from hypothesis import given, settings, strategies as st

from conftest import make_cache, touch
from repro.core.acm import ACM
from repro.core.allocation import ALLOC_LRU, GLOBAL_LRU, LRU_S, LRU_SP
from repro.core.opt import lru_misses, opt_misses
from repro.fs.filesystem import SimFilesystem
from repro.core.interface import FBehaviorOp, fbehavior

# A reference stream over a handful of files/blocks.
accesses = st.lists(
    st.tuples(
        st.integers(1, 3),    # pid
        st.integers(1, 4),    # file id
        st.integers(0, 15),   # block number
        st.booleans(),        # write?
    ),
    max_size=300,
)


@st.composite
def directive(draw):
    kind = draw(st.sampled_from(["prio", "policy", "temp"]))
    pid = draw(st.integers(1, 3))
    if kind == "prio":
        return ("prio", pid, draw(st.integers(1, 4)), draw(st.integers(-1, 3)))
    if kind == "policy":
        return ("policy", pid, draw(st.integers(-1, 3)), draw(st.sampled_from(["lru", "mru"])))
    start = draw(st.integers(0, 15))
    return ("temp", pid, draw(st.integers(1, 4)), start, draw(st.integers(start, 15)), -1)


mixed_ops = st.lists(
    st.one_of(
        st.tuples(st.just("access"), st.integers(1, 3), st.integers(1, 4), st.integers(0, 15), st.booleans()),
        directive(),
    ),
    max_size=200,
)


class TestObliviousEquivalence:
    """If no process manages its cache, LRU-SP *is* global LRU."""

    @settings(max_examples=60, deadline=None)
    @given(accesses, st.integers(2, 12))
    def test_identical_hit_miss_sequence(self, stream, nframes):
        results = []
        for policy in (GLOBAL_LRU, LRU_SP, LRU_S, ALLOC_LRU):
            cache = make_cache(nframes=nframes, policy=policy)
            outcomes = []
            for pid, fid, blk, write in stream:
                out = touch(cache, pid, fid, blk, write=write, whole=write)
                outcomes.append((out.hit, out.evicted.id if out.evicted else None))
            results.append(outcomes)
        assert results[0] == results[1] == results[2] == results[3]

    @settings(max_examples=40, deadline=None)
    @given(accesses, st.integers(2, 12))
    def test_matches_reference_lru_model(self, stream, nframes):
        cache = make_cache(nframes=nframes, policy=LRU_SP)
        misses = 0
        for pid, fid, blk, write in stream:
            if not touch(cache, pid, fid, blk, write=write, whole=write).hit:
                misses += 1
        assert misses == lru_misses([(f, b) for _, f, b, _ in stream], nframes)


class TestInvariantsUnderChaos:
    """Arbitrary interleavings of accesses and directives keep BUF sane."""

    def _apply(self, cache, fs, op):
        acm = cache.acm
        if op[0] == "access":
            _, pid, fid, blk, write = op
            touch(cache, pid, fid, blk, write=write, whole=write)
        elif op[0] == "prio":
            _, pid, fid, prio = op
            acm.set_priority(pid, fid, prio)
        elif op[0] == "policy":
            _, pid, prio, policy = op
            acm.set_policy(pid, prio, policy)
        else:
            _, pid, fid, start, end, prio = op
            acm.set_temppri(pid, fid, start, end, prio)

    @settings(max_examples=60, deadline=None)
    @given(mixed_ops, st.integers(2, 10), st.sampled_from([LRU_SP, LRU_S, ALLOC_LRU]))
    def test_invariants_hold(self, ops, nframes, policy):
        cache = make_cache(nframes=nframes, policy=policy)
        for op in ops:
            self._apply(cache, None, op)
            cache.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(mixed_ops, st.integers(2, 10))
    def test_deterministic_replay(self, ops, nframes):
        def run():
            cache = make_cache(nframes=nframes, policy=LRU_SP)
            for op in ops:
                self._apply(cache, None, op)
            return (
                cache.stats.hits,
                cache.stats.misses,
                cache.stats.swaps,
                sorted(b.id for b in cache.blocks_owned_by(1)),
            )

        assert run() == run()

    @settings(max_examples=40, deadline=None)
    @given(mixed_ops, st.integers(2, 10))
    def test_temp_priorities_revert_on_reference(self, ops, nframes):
        cache = make_cache(nframes=nframes, policy=LRU_SP)
        for op in ops:
            self._apply(cache, None, op)
            if op[0] == "access":
                _, pid, fid, blk, _ = op
                block = cache.peek(fid, blk)
                if block is not None and block.owner_pid == pid:
                    assert not block.has_temp

    @settings(max_examples=30, deadline=None)
    @given(mixed_ops, st.integers(2, 10))
    def test_placeholder_counts_consistent(self, ops, nframes):
        cache = make_cache(nframes=nframes, policy=LRU_SP)
        for op in ops:
            self._apply(cache, None, op)
        table = cache.placeholders
        assert table.created == table.consumed + table.discarded + len(table)


class TestPolicyQuality:
    """A correct MRU manager on a cyclic trace beats global LRU and never
    beats offline OPT (the optimal replacement principle)."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(4, 20), st.integers(2, 5), st.integers(2, 15))
    def test_mru_between_opt_and_lru_on_cycles(self, nblocks, passes, nframes):
        trace = list(range(nblocks)) * passes
        acm = ACM()
        cache = make_cache(nframes=nframes, policy=LRU_SP, acm=acm)
        acm.register(1)
        acm.set_policy(1, 0, "mru")
        misses = 0
        for blk in trace:
            if not touch(cache, 1, 1, blk).hit:
                misses += 1
        assert opt_misses(trace, nframes) <= misses <= lru_misses(trace, nframes)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(6, 20), st.integers(3, 5))
    def test_mru_strictly_beats_lru_when_cycle_exceeds_cache(self, nblocks, passes):
        nframes = nblocks - 2
        trace = list(range(nblocks)) * passes
        acm = ACM()
        cache = make_cache(nframes=nframes, policy=LRU_SP, acm=acm)
        acm.register(1)
        acm.set_policy(1, 0, "mru")
        misses = 0
        for blk in trace:
            if not touch(cache, 1, 1, blk).hit:
                misses += 1
        assert misses < lru_misses(trace, nframes)
