"""The update daemon."""

import pytest

from conftest import make_cache, touch
from repro.disk.drive import DiskDrive
from repro.disk.params import RZ56
from repro.fs.syncer import UpdateDaemon
from repro.sim.engine import Engine


def build(interval=30.0, age_threshold=0.0):
    eng = Engine()
    cache = make_cache(nframes=32, clock=lambda: eng.now)
    drive = DiskDrive(eng, RZ56)
    flushed = []
    daemon = UpdateDaemon(
        eng, cache, {RZ56.name: drive}, interval=interval,
        age_threshold=age_threshold, on_flush=flushed.append,
    )
    return eng, cache, drive, daemon, flushed


def dirty(cache, blockno):
    outcome = touch(cache, 1, 1, blockno, write=True, whole=True)
    outcome.block.disk = RZ56.name
    return outcome.block


class TestFlush:
    def test_periodic_flush(self):
        eng, cache, drive, daemon, flushed = build(interval=10.0)
        dirty(cache, 0)
        daemon.start()
        eng.run(until=11.0)
        daemon.stop()
        eng.run()
        assert len(flushed) == 1
        assert drive.stats.writes == 1
        assert cache.dirty_blocks() == []

    def test_stop_prevents_future_ticks(self):
        eng, cache, drive, daemon, flushed = build(interval=10.0)
        daemon.start()
        daemon.stop()
        dirty(cache, 0)
        eng.run()
        assert flushed == []

    def test_age_threshold_spares_young_blocks(self):
        eng, cache, drive, daemon, flushed = build(interval=10.0, age_threshold=100.0)
        dirty(cache, 0)
        daemon.start()
        eng.run(until=11.0)
        assert flushed == []

    def test_flush_all_ignores_age(self):
        eng, cache, drive, daemon, flushed = build(age_threshold=100.0)
        dirty(cache, 0)
        assert daemon.flush_all() == 1

    def test_flush_marks_clean_at_submit(self):
        eng, cache, drive, daemon, flushed = build()
        block = dirty(cache, 0)
        daemon.flush_all()
        assert not block.dirty

    def test_redirty_after_flush_schedules_again(self):
        eng, cache, drive, daemon, flushed = build(interval=5.0)
        dirty(cache, 0)
        daemon.start()
        eng.run(until=6.0)
        dirty(cache, 0)
        eng.run(until=11.0)
        daemon.stop()
        eng.run()
        assert len(flushed) == 2

    def test_clean_cache_flushes_nothing(self):
        eng, cache, drive, daemon, flushed = build()
        touch(cache, 1, 1, 0)  # clean read
        assert daemon.flush_all() == 0

    def test_start_idempotent(self):
        eng, cache, drive, daemon, flushed = build(interval=10.0)
        daemon.start()
        daemon.start()
        dirty(cache, 0)
        eng.run(until=11.0)
        assert len(flushed) == 1

    def test_validation(self):
        eng = Engine()
        cache = make_cache()
        with pytest.raises(ValueError):
            UpdateDaemon(eng, cache, {}, interval=0)
        with pytest.raises(ValueError):
            UpdateDaemon(eng, cache, {}, age_threshold=-1)

    def test_unknown_disk_marks_clean_without_io(self):
        eng, cache, drive, daemon, flushed = build()
        block = dirty(cache, 0)
        block.disk = "ghost"
        assert daemon.flush_all() == 0
        assert not block.dirty
