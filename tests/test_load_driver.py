"""repro.harness.load: the cluster load driver and its report, plus the
fan-out regressions it exposed.

The regression classes pin the two defects found while scaling the
driver to thousands of sessions: a :class:`CacheClient` pending-map
entry stranded by any non-reader exit path (timeout, cancelled waiter,
failed send), and :class:`ClusterClient` batches above the wire's
``MAX_BATCH_OPS`` hitting the server's frame validation in one piece.
"""

import asyncio
import contextlib

import pytest

from repro.cluster import ClusterClient, ClusterSupervisor
from repro.faults import FaultPlan
from repro.harness.load import (
    LOAD_LATENCY_BUCKETS,
    REPORT_SCHEMA,
    LoadDriver,
    load_main,
    render_report,
    validate_report,
)
from repro.server import CacheClient, CacheDaemon, build_config
from repro.server.client import RetryPolicy
from repro.server.protocol import MAX_BATCH_OPS
from repro.workloads.production import (
    PoissonArrivals,
    TrafficOp,
    hotspot_profile,
    uniform_profile,
)


def run(coro):
    return asyncio.run(coro)


def small_driver(**overrides):
    """An inproc driver sized for the test suite, closed-loop."""
    kwargs = dict(
        profile=hotspot_profile(paths=48, blocks_per_file=4),
        shards=2,
        sessions=8,
        ops=240,
        seed=11,
        spawn="inproc",
        depth=2,
        cache_mb=0.5,
    )
    kwargs.update(overrides)
    return LoadDriver(**kwargs)


class TestLoadDriver:
    def test_inproc_run_produces_valid_report(self):
        report = run(small_driver().run())
        validate_report(report)  # raises on any schema problem
        assert report["schema"] == REPORT_SCHEMA
        ops = report["ops"]
        assert ops["offered"] == 240
        assert ops["completed"] + ops["failed"] + ops["unissued"] == 240
        assert ops["failed"] == 0 and ops["unissued"] == 0
        assert ops["reads"] + ops["writes"] == ops["completed"]
        assert report["throughput"]["ops_per_sec"] > 0
        latency = report["latency"]
        assert latency["count"] == ops["completed"]
        assert 0 < latency["p50_s"] <= LOAD_LATENCY_BUCKETS[-1]
        assert latency["p50_s"] <= latency["p99_s"]
        assert 0.0 <= report["hit_ratio"]["overall"] <= 1.0
        # client-observed hits and the merged server stats must agree
        assert report["hit_ratio"]["server"] == pytest.approx(
            report["hit_ratio"]["overall"], abs=0.01
        )
        assert report["cluster"]["shard_count"] == 2

    def test_same_seed_same_offered_stream(self):
        a = small_driver().stream()
        b = small_driver().stream()
        assert a == b

    def test_trace_replay_run(self):
        trace = [
            TrafficOp(f"replay/{i % 6}.dat", "r" if i % 3 else "w", i % 4)
            for i in range(120)
        ]
        driver = LoadDriver(
            trace_ops=trace,
            shards=2,
            sessions=4,
            ops=120,
            spawn="inproc",
            cache_mb=0.5,
            blocks_per_file=4,
        )
        assert not driver.open_loop
        report = run(driver.run())
        assert report["ops"]["completed"] == 120
        assert report["profile"] == "trace"

    def test_open_loop_arrivals_are_honoured(self):
        # 240 ops at 2000/s must take at least ~100ms of offered time
        driver = small_driver(
            profile=uniform_profile(
                paths=32, blocks_per_file=4, arrivals=PoissonArrivals(2000.0)
            )
        )
        assert driver.open_loop
        report = run(driver.run())
        assert report["open_loop"] is True
        assert report["ops"]["completed"] == 240
        assert report["throughput"]["elapsed_s"] > 0.1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            LoadDriver()
        with pytest.raises(ValueError, match="exactly one"):
            LoadDriver(profile=uniform_profile(paths=8), trace_ops=[])
        with pytest.raises(ValueError):
            LoadDriver(profile=uniform_profile(paths=8), shards=0)
        with pytest.raises(ValueError):
            LoadDriver(profile=uniform_profile(paths=8), sessions=0)
        with pytest.raises(ValueError):
            LoadDriver(profile=uniform_profile(paths=8), depth=0)

    def test_validate_report_rejects_mutations(self):
        report = run(small_driver(ops=40, sessions=2).run())
        bad = dict(report, schema="repro.load/99")
        with pytest.raises(ValueError, match="schema"):
            validate_report(bad)
        bad = dict(report, ops=dict(report["ops"], completed=-1))
        with pytest.raises(ValueError, match="completed"):
            validate_report(bad)
        bad = dict(report, hit_ratio=dict(report["hit_ratio"], overall=1.5))
        with pytest.raises(ValueError, match="overall"):
            validate_report(bad)
        bad = dict(report)
        del bad["latency"]
        with pytest.raises(ValueError, match="latency"):
            validate_report(bad)

    def test_render_report_is_operator_readable(self):
        report = run(small_driver(ops=40, sessions=2).run())
        text = render_report(report)
        assert "ops/s" in text
        assert "p50" in text and "p99" in text
        assert "hit ratio" in text

    def test_cli_smoke(self, capsys):
        status = load_main(
            [
                "--profile", "uniform",
                "--paths", "32",
                "--blocks-per-file", "4",
                "--shards", "2",
                "--sessions", "4",
                "--ops", "80",
                "--closed-loop",
                "--spawn", "inproc",
                "--cache-mb", "0.5",
                "--json",
                "--quiet",
            ]
        )
        assert status == 0
        payload = capsys.readouterr().out
        assert REPORT_SCHEMA in payload

    def test_cli_bad_trace_exits_with_line_number(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("a/f,frob,0\n")
        status = load_main(["--trace", str(path), "--spawn", "inproc"])
        assert status == 2
        err = capsys.readouterr().err
        assert f"{path}:1" in err and "unknown op" in err


# -- CacheClient pending-map regression ------------------------------------


def slow_daemon(delay_s):
    """A daemon whose inbound frames are all delayed by ``delay_s``."""
    return CacheDaemon(
        build_config(
            cache_mb=0.5,
            faults=FaultPlan(seed=1, slow_loris_rate=1.0, slow_loris_s=delay_s),
        )
    )


class TestPendingMapRegression:
    def test_timeout_unregisters_pending_entry(self):
        async def go():
            daemon = slow_daemon(0.5)
            client = await CacheClient.connect_inproc(daemon, name="t")
            for _ in range(5):
                with pytest.raises(asyncio.TimeoutError):
                    await client._call_once("ping", {}, 0.02)
            # Pre-fix, every timed-out request stranded its future here
            # forever — the map grew without bound under load.
            assert client._pending == {}
            assert client.timeouts == 5
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_cancelled_waiter_unregisters_pending_entry(self):
        async def go():
            daemon = slow_daemon(0.5)
            client = await CacheClient.connect_inproc(daemon, name="t")
            task = asyncio.ensure_future(client.ping())
            await asyncio.sleep(0.05)
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
            assert client._pending == {}
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_failed_send_unregisters_pending_entry(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon, name="t")

            real_send = client._transport.send

            async def broken_send(message):
                raise RuntimeError("wire torn mid-send")

            client._transport.send = broken_send
            with pytest.raises(RuntimeError, match="wire torn"):
                await client._call_once("ping", {}, None)
            assert client._pending == {}
            client._transport.send = real_send
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_stalled_shard_leaves_no_pending_residue(self):
        # The ISSUE scenario: one shard of the cluster stalls (slow-loris
        # frame delivery) while sessions keep issuing; once the burst
        # completes every connection's pending map must drain to empty.
        async def go():
            sup = ClusterSupervisor(
                shards=3,
                cache_mb=0.5,
                replicas=1,
                shard_faults={
                    "shard-0": FaultPlan(
                        seed=7, slow_loris_rate=1.0, slow_loris_s=0.01
                    )
                },
            )
            await sup.start()
            cc = await ClusterClient.connect(
                sup, name="t", retry=RetryPolicy(timeout_s=10.0, max_retries=0)
            )
            paths = [f"/stall{i}.bin" for i in range(24)]
            for path in paths:
                await cc.open(path, size_blocks=2)
            await asyncio.gather(
                *(cc.read(path, 0) for path in paths for _ in range(4))
            )
            for client in cc.clients.values():
                assert client._pending == {}
            await cc.aclose()
            await sup.aclose()

        run(go())


# -- ClusterClient mega-batch regression -----------------------------------


class TestBatchSplitRegression:
    def test_readv_above_max_batch_ops_is_chunked(self):
        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=2, replicas=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="t")
            paths = [f"/big{i}.bin" for i in range(8)]
            for path in paths:
                await cc.open(path, size_blocks=4)
            # Pre-fix this went to each shard as one oversized frame and
            # the server's MAX_BATCH_OPS validation rejected it outright.
            ops = [
                (paths[i % len(paths)], i % 4)
                for i in range(MAX_BATCH_OPS + 300)
            ]
            results = await cc.readv(ops)
            assert len(results) == len(ops)
            assert all("hit" in r and "error" not in r for r in results)
            # re-merge must preserve op order across the chunk boundary
            warm = await cc.readv(ops[:8])
            assert [r["hit"] for r in warm] == [True] * 8
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_writev_above_max_batch_ops_is_chunked(self):
        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=2, replicas=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="t")
            for i in range(4):
                await cc.open(f"/wb{i}.bin", size_blocks=4)
            ops = [
                (f"/wb{i % 4}.bin", i % 4, True)
                for i in range(MAX_BATCH_OPS + 50)
            ]
            results = await cc.writev(ops)
            assert len(results) == len(ops)
            assert all("hit" in r and "error" not in r for r in results)
            await cc.aclose()
            await sup.aclose()

        run(go())
