"""ACM: managers, pools, priorities, temp priorities, revocation, limits."""

import pytest

from repro.core.acm import ACM, AcmError, Manager, Pool, ResourceLimits
from repro.core.blocks import CacheBlock
from repro.core.policies import PoolPolicy
from repro.core.revocation import RevocationPolicy


def block(file_id=1, blockno=0, pid=1):
    return CacheBlock(file_id, blockno, owner_pid=pid)


def manager(pid=1, **limits):
    return Manager(pid, ResourceLimits(**limits))


class TestPool:
    def test_replacement_choice_lru_is_head(self):
        pool = Pool(0)
        a, b = block(blockno=0), block(blockno=1)
        pool.insert_referenced(a)
        pool.insert_referenced(b)
        assert pool.replacement_choice(PoolPolicy.LRU) is a

    def test_replacement_choice_mru_is_tail(self):
        pool = Pool(0)
        a, b = block(blockno=0), block(blockno=1)
        pool.insert_referenced(a)
        pool.insert_referenced(b)
        assert pool.replacement_choice(PoolPolicy.MRU) is b

    def test_choice_skips_in_flight(self):
        pool = Pool(0)
        a, b = block(blockno=0), block(blockno=1)
        a.in_flight = True
        pool.insert_referenced(a)
        pool.insert_referenced(b)
        assert pool.replacement_choice(PoolPolicy.LRU) is b

    def test_choice_none_when_all_in_flight(self):
        pool = Pool(0)
        a = block()
        a.in_flight = True
        pool.insert_referenced(a)
        assert pool.replacement_choice(PoolPolicy.LRU) is None

    def test_touched_moves_to_mru(self):
        pool = Pool(0)
        a, b = block(blockno=0), block(blockno=1)
        pool.insert_referenced(a)
        pool.insert_referenced(b)
        pool.touched(a)
        assert pool.replacement_choice(PoolPolicy.LRU) is b

    def test_insert_moved_lru_goes_to_tail(self):
        pool = Pool(0)
        a, b = block(blockno=0), block(blockno=1)
        pool.insert_referenced(a)
        pool.insert_moved(b, PoolPolicy.LRU)
        # LRU replaces the head; the moved block should be replaced later.
        assert pool.replacement_choice(PoolPolicy.LRU) is a

    def test_insert_moved_mru_goes_to_head(self):
        pool = Pool(0)
        a, b = block(blockno=0), block(blockno=1)
        pool.insert_referenced(a)
        pool.insert_moved(b, PoolPolicy.MRU)
        # MRU replaces the tail; the moved block sits at the head.
        assert pool.replacement_choice(PoolPolicy.MRU) is a


class TestManagerPools:
    def test_default_policy_is_lru(self):
        assert manager().policy_of(0) is PoolPolicy.LRU

    def test_set_policy(self):
        m = manager()
        m.set_policy(0, PoolPolicy.MRU)
        assert m.policy_of(0) is PoolPolicy.MRU

    def test_set_policy_parses_strings(self):
        m = manager()
        m.set_policy(1, "mru")
        assert m.policy_of(1) is PoolPolicy.MRU

    def test_priority_levels_limit(self):
        m = manager(max_priority_levels=2)
        m.set_policy(0, "lru")
        m.set_policy(1, "lru")
        with pytest.raises(AcmError):
            m.set_policy(2, "lru")

    def test_file_priority_roundtrip(self):
        m = manager()
        m.set_file_prio(5, 2)
        assert m.long_term_prio(5) == 2
        assert m.long_term_prio(6) == 0

    def test_zero_priority_frees_record(self):
        m = manager(max_priority_files=1)
        m.set_file_prio(5, 1)
        m.set_file_prio(5, 0)
        m.set_file_prio(6, 1)  # fits because 5's record was freed
        assert m.long_term_prio(5) == 0
        assert m.long_term_prio(6) == 1

    def test_priority_files_limit(self):
        m = manager(max_priority_files=1)
        m.set_file_prio(5, 1)
        with pytest.raises(AcmError):
            m.set_file_prio(6, 1)

    def test_add_block_uses_long_term_priority(self):
        m = manager()
        m.set_file_prio(9, 3)
        b = block(file_id=9)
        m.add_block(b)
        assert b.pool_prio == 3
        assert b in m.pools[3].blocks

    def test_remove_block_resets_state(self):
        m = manager()
        b = block()
        m.add_block(b)
        b.has_temp = True
        b.temp_prio = -1
        m.remove_block(b)
        assert b.pool_prio is None
        assert not b.has_temp
        assert b.temp_prio is None
        assert len(m.pools[0]) == 0

    def test_move_block(self):
        m = manager()
        b = block()
        m.add_block(b)
        m.move_block(b, -1)
        assert b.pool_prio == -1
        assert b in m.pools[-1].blocks
        assert b not in m.pools[0].blocks

    def test_move_block_same_pool_noop(self):
        m = manager()
        b = block()
        m.add_block(b)
        m.move_block(b, 0)
        assert b.pool_prio == 0


class TestPickReplacement:
    def test_lowest_priority_pool_first(self):
        m = manager()
        lo, hi = block(blockno=0), block(file_id=2, blockno=0)
        m.set_file_prio(2, 1)
        m.add_block(lo)   # prio 0
        m.add_block(hi)   # prio 1
        assert m.pick_replacement() is lo

    def test_negative_priorities_go_first(self):
        m = manager()
        freed, normal = block(blockno=0), block(blockno=1)
        m.add_block(freed)
        m.add_block(normal)
        m.move_block(freed, -1)
        assert m.pick_replacement() is freed

    def test_empty_manager_returns_none(self):
        assert manager().pick_replacement() is None

    def test_skips_empty_pools(self):
        m = manager()
        b = block()
        m.set_policy(-1, "lru")  # priority level exists but holds nothing
        m.add_block(b)
        assert m.pick_replacement() is b

    def test_respects_pool_policy(self):
        m = manager()
        m.set_policy(0, "mru")
        a, b = block(blockno=0), block(blockno=1)
        m.add_block(a)
        m.add_block(b)
        assert m.pick_replacement() is b


class TestTempPriority:
    def test_touch_reverts_temp(self):
        m = manager()
        b = block()
        m.add_block(b)
        m.move_block(b, -1)
        b.has_temp = True
        b.temp_prio = -1
        m.touch_block(b)
        assert not b.has_temp
        assert b.pool_prio == 0

    def test_revert_goes_to_long_term_priority(self):
        m = manager()
        m.set_file_prio(1, 2)
        b = block(file_id=1)
        m.add_block(b)
        m.move_block(b, -1)
        b.has_temp = True
        m.touch_block(b)
        assert b.pool_prio == 2

    def test_touch_without_temp_keeps_pool(self):
        m = manager()
        a, b = block(blockno=0), block(blockno=1)
        m.add_block(a)
        m.add_block(b)
        m.touch_block(a)
        assert m.pick_replacement() is b  # a became most recent


class TestRevocation:
    def test_revoke_dissolves_pools(self):
        m = manager()
        b = block()
        m.add_block(b)
        m.revoke()
        assert m.revoked
        assert m.pools == {}
        assert b.pool_prio is None

    def test_policy_thresholds(self):
        pol = RevocationPolicy(min_decisions=10, mistake_ratio=0.5)
        assert not pol.should_revoke(5, 5)          # too few decisions
        assert not pol.should_revoke(10, 5)         # exactly at ratio
        assert pol.should_revoke(10, 6)

    def test_bad_policy_args(self):
        with pytest.raises(ValueError):
            RevocationPolicy(min_decisions=0)
        with pytest.raises(ValueError):
            RevocationPolicy(mistake_ratio=0.0)
        with pytest.raises(ValueError):
            RevocationPolicy(mistake_ratio=1.5)

    def test_acm_revokes_after_mistakes(self):
        acm = ACM(revocation=RevocationPolicy(min_decisions=1, mistake_ratio=0.4))
        m = acm.register(1)
        m.decisions = 2
        acm.placeholder_used(1, (1, 5), block())
        # one mistake over two decisions (0.5) exceeds the 0.4 threshold
        assert m.revoked
        assert acm.revocations == 1

    def test_acm_does_not_revoke_below_threshold(self):
        acm = ACM(revocation=RevocationPolicy(min_decisions=1, mistake_ratio=0.6))
        m = acm.register(1)
        m.decisions = 2
        acm.placeholder_used(1, (1, 5), block())
        assert not m.revoked

    def test_revoked_manager_not_consulted(self):
        acm = ACM()
        m = acm.register(1)
        b = block()
        acm.new_block(b)
        m.revoke()
        candidate = block(blockno=9)
        assert acm.replace_block(candidate, (1, 99)) is candidate

    def test_register_after_revocation_fails(self):
        acm = ACM()
        m = acm.register(1)
        m.revoke()
        with pytest.raises(AcmError):
            acm.register(1)


class TestACMCalls:
    def test_unmanaged_blocks_have_no_pool(self):
        acm = ACM()
        b = block(pid=42)
        acm.new_block(b)
        assert b.pool_prio is None

    def test_new_block_pools_for_manager(self):
        acm = ACM()
        acm.register(1)
        b = block(pid=1)
        acm.new_block(b)
        assert b.pool_prio == 0

    def test_replace_block_unmanaged_returns_candidate(self):
        acm = ACM()
        candidate = block(pid=99)
        assert acm.replace_block(candidate, (1, 0)) is candidate

    def test_replace_block_counts_overrules(self):
        acm = ACM()
        m = acm.register(1)
        old, new = block(blockno=0), block(blockno=1)
        acm.new_block(old)
        acm.new_block(new)
        candidate = new  # manager prefers the LRU head (old)
        chosen = acm.replace_block(candidate, (9, 9))
        assert chosen is old
        assert m.decisions == 1

    def test_replace_block_same_choice_not_an_overrule(self):
        acm = ACM()
        m = acm.register(1)
        only = block()
        acm.new_block(only)
        assert acm.replace_block(only, (9, 9)) is only
        assert m.decisions == 0

    def test_transfer_ownership(self):
        acm = ACM()
        acm.register(1)
        acm.register(2)
        b = block(pid=1)
        acm.new_block(b)
        acm.transfer_ownership(b, 2)
        assert b.owner_pid == 2
        assert b in acm.managers[2].pools[0].blocks
        assert len(acm.managers[1].pools[0]) == 0

    def test_get_priority_without_manager(self):
        assert ACM().get_priority(5, 1) == 0

    def test_get_policy_without_manager(self):
        assert ACM().get_policy(5, 0) is PoolPolicy.LRU

    def test_set_temppri_empty_range_rejected(self):
        acm = ACM()
        with pytest.raises(AcmError):
            acm.set_temppri(1, 1, 5, 4, -1)
