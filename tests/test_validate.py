"""The self-validation report (rendering and claim wiring)."""

import pytest

from repro.harness.validate import Check, render_validation


class TestRender:
    def test_pass_and_fail_marks(self):
        checks = [
            Check("fig4/din", "io-ratio", "0.27", "0.29", True),
            Check("fig5", "grows", "False", "True", False),
        ]
        text = render_validation(checks)
        assert "[PASS] fig4/din" in text
        assert "[FAIL] fig5" in text
        assert "1/2 claims reproduced" in text

    def test_alignment_uses_longest_names(self):
        checks = [
            Check("a", "short", "1", "1", True),
            Check("a-much-longer-name", "a longer claim text", "2", "2", True),
        ]
        text = render_validation(checks)
        lines = text.splitlines()
        assert lines[0].index("ours=") == lines[1].index("ours=")

    def test_all_pass_summary(self):
        checks = [Check("x", "c", "1", "1", True)]
        assert "1/1 claims reproduced" in render_validation(checks)


class TestSections:
    def test_sections_registered(self):
        from repro.harness import validate

        names = [fn.__name__ for fn in validate._SECTIONS]
        assert "_ratio_checks" in names
        assert "_table1_checks" in names
        assert "_table34_checks" in names
        assert len(names) == 7

    def test_small_scale_validation_runs(self):
        """Exercise the fig4 ratio section on a reduced configuration by
        priming the memoised experiment with small inputs."""
        from repro.harness.experiments import fig4_single_apps

        data = fig4_single_apps(("din",), (1.0,))
        assert data["din"][1.0].io_ratio <= 1.0
