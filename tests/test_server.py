"""The cache daemon: wire protocol, transports, backpressure, shutdown.

Everything here drives a real :class:`~repro.server.daemon.CacheDaemon` —
mostly over the in-process queue transport (same frame codec as sockets),
plus loopback TCP, a Unix socket, and the ``repro-accfc serve`` CLI as a
subprocess.
"""

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.server import CacheClient, CacheDaemon, ProtocolError, ServerBusy, ServerError, build_config
from repro.server import protocol
from repro.server.protocol import (
    FrameDecoder,
    decode_payload,
    encode_frame,
    error_response,
    ok_response,
    queue_pair,
    request,
    request_id_of,
)
from repro.server.session import Session

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def run(coro):
    return asyncio.run(coro)


async def settle(n=80):
    """Let pending callbacks and queue hops run."""
    for _ in range(n):
        await asyncio.sleep(0)


class TestFrameCodec:
    def test_roundtrip(self):
        msg = request(7, "read", path="a", blockno=3)
        assert decode_payload(encode_frame(msg)[4:]) == msg

    def test_incremental_decode_byte_by_byte(self):
        decoder = FrameDecoder()
        wire = encode_frame(request(1, "ping")) + encode_frame(ok_response(1, {"pong": True}))
        messages = []
        for i in range(len(wire)):
            messages.extend(decoder.feed(wire[i : i + 1]))
        assert [m.get("id") for m in messages] == [1, 1]
        assert decoder.pending_bytes == 0

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1, "blob": "x" * (protocol.MAX_FRAME_BYTES + 1)})

    def test_oversize_header_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(ProtocolError):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_unencodable_message_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"id": 1, "value": object()})

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2]")

    def test_undecodable_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ProtocolError):
            error_response(1, "TEAPOT", "short and stout")

    def test_request_id_of_malformed(self):
        assert request_id_of(None) is None
        assert request_id_of({"id": "seven"}) is None
        assert request_id_of({"id": 7}) == 7

    def test_session_rejects_degenerate_window(self):
        server_side, _ = queue_pair()
        with pytest.raises(ValueError):
            Session(1, server_side, window=0)


class TestInproc:
    def test_open_read_write_hit_miss(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5, sanitize=True))
            client = await CacheClient.connect_inproc(daemon, name="reader")
            assert client.pid == 1
            info = await client.open("data", size_blocks=8)
            assert info == {"path": "data", "nblocks": 8, "disk": info["disk"]}
            assert await client.read("data", 0) is False  # cold miss
            assert await client.read("data", 0) is True  # now resident
            assert await client.write("data", 3, whole=True) is False
            assert await client.read("data", 3) is True  # delayed write kept it
            await client.aclose()
            summary = await daemon.aclose()
            assert summary["flushed_blocks"] == 1  # the one dirty block
            checker = daemon.service.cache.sanitizer
            assert checker is not None
            checker.check_now("final")

        run(go())

    def test_directives_roundtrip(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon, name="smart")
            await client.open("f", size_blocks=4)
            await client.set_priority("f", 0)
            assert await client.get_priority("f") == 0
            await client.set_policy(0, "mru")
            assert await client.get_policy(0) == "mru"
            await client.set_temppri("f", 1, 2, -1)
            stats = await client.stats()
            entry = next(s for s in stats["sessions"] if s["pid"] == client.pid)
            assert entry["directives"] == 5
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_stats_snapshot_shape(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            a = await CacheClient.connect_inproc(daemon, name="alice")
            b = await CacheClient.connect_inproc(daemon)
            await a.open("fa", size_blocks=6)
            for blockno in range(6):
                await a.read("fa", blockno)
            for blockno in range(6):
                await a.read("fa", blockno)
            stats = await b.stats()
            assert stats["server"]["sessions"] == 2
            assert stats["cache"]["policy"] == "lru-sp"
            entry = next(s for s in stats["sessions"] if s["name"] == "alice")
            assert entry["accesses"] == 12
            assert entry["hits"] == 6
            assert entry["misses"] == 6
            assert entry["disk_reads"] == 6
            assert entry["frames"] == 6
            assert entry["hit_ratio"] == pytest.approx(0.5)
            await a.aclose()
            await b.aclose()
            await daemon.aclose()

        run(go())

    def test_errors_map_to_codes(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon)
            with pytest.raises(ServerError) as err:
                await client.read("ghost", 0)
            assert err.value.code == "FS"
            await client.open("f", size_blocks=2)
            with pytest.raises(ServerError) as err:
                await client.read("f", 99)  # past EOF
            assert err.value.code == "FS"
            with pytest.raises(ServerError) as err:
                await client.call("read", path="f", blockno="many")
            assert err.value.code == "BAD_REQUEST"
            with pytest.raises(ServerError) as err:
                await client.call("set_priority", path="f")  # missing prio
            assert err.value.code == "BAD_REQUEST"
            with pytest.raises(ServerError) as err:
                await client.call("set_policy", prio=0, policy="belady")
            assert err.value.code == "DIRECTIVE"
            with pytest.raises(ServerError) as err:
                await client.call("chmod", path="f")
            assert err.value.code == "BAD_REQUEST"
            assert daemon.errors == []  # all expected failures, no INTERNAL
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_ping_and_hello_bypass_kernel(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            daemon.pause()  # kernel held; protocol verbs must still answer
            client = await CacheClient.connect_inproc(daemon, name="probe")
            pong = await client.ping()
            assert pong["pong"] is True and pong["pid"] == client.pid
            daemon.resume()
            await client.aclose()
            await daemon.aclose()

        run(go())


class TestBackpressure:
    def test_global_limit_returns_busy(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5), window=8, global_limit=2)
            client = await CacheClient.connect_inproc(daemon, name="flood")
            await client.open("f", size_blocks=8)
            daemon.pause()  # queue up without applying
            tasks = [
                asyncio.ensure_future(client.call("read", path="f", blockno=i))
                for i in range(5)
            ]
            await settle()
            assert daemon.pending_total == 2  # at the global limit
            daemon.resume()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            busy = [r for r in results if isinstance(r, ServerBusy)]
            served = [r for r in results if isinstance(r, dict)]
            assert len(busy) == 3 and len(served) == 2
            stats = await client.stats()
            assert stats["server"]["busy_rejections"] == 3
            entry = next(s for s in stats["sessions"] if s["pid"] == client.pid)
            assert entry["busy_rejections"] == 3
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_session_window_stops_reading(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5), window=4, global_limit=1024)
            client = await CacheClient.connect_inproc(daemon, name="pushy", window=64)
            await client.open("f", size_blocks=16)
            daemon.pause()
            tasks = [
                asyncio.ensure_future(client.call("read", path="f", blockno=i))
                for i in range(12)
            ]
            await settle()
            # The daemon read exactly `window` requests and stopped; the
            # rest wait in the transport, unqueued and un-BUSYed.
            assert daemon.pending_total == 4
            assert daemon.busy_rejections == 0
            daemon.resume()
            results = await asyncio.gather(*tasks)
            assert all(isinstance(r, dict) for r in results)
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_close_is_exempt_from_global_limit(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5), window=8, global_limit=1)
            client = await CacheClient.connect_inproc(daemon)
            await client.open("f", size_blocks=4)
            daemon.pause()
            pending = asyncio.ensure_future(client.call("read", path="f", blockno=0))
            await settle()
            assert daemon.pending_total == 1
            daemon.resume()
            await pending
            await client.aclose()  # close must not bounce with BUSY
            await daemon.aclose()

        run(go())


class TestShutdown:
    def test_graceful_close_flushes_dirty_blocks(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5, sanitize=True))
            client = await CacheClient.connect_inproc(daemon, name="writer")
            await client.open("out", size_blocks=8)
            for blockno in range(8):
                await client.write("out", blockno)
            await client.aclose()
            summary = await daemon.aclose()
            assert summary["flushed_blocks"] == 8
            # hello + open + 8 writes + close, but not ping/hello replies
            assert summary["requests_served"] == 10
            assert daemon.service.counters_for(1).disk_writes == 8
            assert len(daemon.service.cache.dirty_blocks()) == 0
            assert await daemon.aclose() is summary  # idempotent

        run(go())

    def test_requests_during_drain_get_shutting_down(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon)
            await client.open("f", size_blocks=2)
            daemon._closing = True  # as aclose() flips it mid-drain
            with pytest.raises(ServerError) as err:
                await client.read("f", 0)
            assert err.value.code == "SHUTTING_DOWN"
            daemon._closing = False
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_kernel_serializes_interleaved_sessions(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5, sanitize=True))
            clients = [
                await CacheClient.connect_inproc(daemon, name=f"c{i}") for i in range(4)
            ]
            for i, c in enumerate(clients):
                await c.open(f"file-{i}", size_blocks=6)

            async def chatter(i, c):
                for rep in range(3):
                    for blockno in range(6):
                        await c.read(f"file-{i}", blockno)

            await asyncio.gather(*(chatter(i, c) for i, c in enumerate(clients)))
            stats = await clients[0].stats()
            for entry in stats["sessions"]:
                assert entry["accesses"] == 18
                assert entry["misses"] == 6  # each file fits; one cold pass
            for c in clients:
                await c.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())


class TestSocketTransports:
    def test_tcp_loopback(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5, sanitize=True))
            host, port = await daemon.start_tcp("127.0.0.1", 0)
            client = await CacheClient.connect_tcp(host, port, name="tcp")
            await client.open("f", size_blocks=4)
            assert await client.read("f", 2) is False
            assert await client.read("f", 2) is True
            stats = await client.stats()
            assert stats["server"]["sessions"] == 1
            await client.aclose()
            await daemon.aclose()
            assert daemon.errors == []

        run(go())

    def test_unix_socket(self, tmp_path):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            path = str(tmp_path / "cache.sock")
            await daemon.start_unix(path)
            client = await CacheClient.connect_unix(path, name="unix")
            await client.open("f", size_blocks=4)
            await client.write("f", 1)
            await client.aclose()
            summary = await daemon.aclose()
            assert summary["flushed_blocks"] == 1

        run(go())

    def test_two_transports_share_one_cache(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            host, port = await daemon.start_tcp("127.0.0.1", 0)
            tcp = await CacheClient.connect_tcp(host, port)
            inproc = await CacheClient.connect_inproc(daemon)
            await tcp.open("shared", size_blocks=4)
            await tcp.read("shared", 0)  # miss, loads the block
            assert await inproc.read("shared", 0) is True  # other client hits
            await tcp.aclose()
            await inproc.aclose()
            await daemon.aclose()

        run(go())


class TestServeCli:
    def test_serve_starts_answers_and_shuts_down(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), str(SRC_ROOT)) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.harness.cli",
                "serve",
                "--port",
                "0",
                "--cache-mb",
                "0.25",
                "--sanitize",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            ready = proc.stdout.readline()
            assert "listening on" in ready
            port = int(ready.rsplit(":", 1)[1])

            async def drive():
                client = await CacheClient.connect_tcp("127.0.0.1", port, name="cli")
                await client.open("f", size_blocks=4)
                await client.write("f", 0)
                await client.read("f", 0)
                stats = await client.stats()
                assert stats["server"]["sessions"] == 1
                await client.aclose()

            run(drive())
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "shut down cleanly" in out
        assert "flushed 1 dirty blocks" in out
