"""The static protocol lint: each rule fires on a synthetic violation and
stays silent on the real tree."""

import textwrap
from pathlib import Path

from repro.check.lint import (
    Finding,
    check_policy_registry,
    check_verb_declarations,
    check_verb_wire,
    check_workload_registry,
    lint_source,
    lint_tree,
    main,
    render,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def lint(source, relpath):
    return lint_source(textwrap.dedent(source), relpath)


def rules(findings):
    return sorted({f.rule for f in findings})


class TestR001AcmProtocol:
    def test_acm_call_outside_buf_fires(self):
        findings = lint(
            """
            def sneaky(acm, block):
                acm.replace_block(block)
            """,
            "repro/sim/engine.py",
        )
        assert rules(findings) == ["R001"]
        assert "replace_block" in findings[0].message

    def test_all_five_procedures_covered(self):
        for proc in ("new_block", "block_gone", "block_accessed", "replace_block", "placeholder_used"):
            findings = lint(f"def f(acm, b):\n    acm.{proc}(b)\n", "repro/harness/cli.py")
            assert rules(findings) == ["R001"], proc

    def test_buf_itself_is_allowed(self):
        findings = lint(
            "def f(acm, b):\n    acm.new_block(b)\n",
            "repro/core/buffercache.py",
        )
        assert findings == []

    def test_plain_function_of_same_name_is_ignored(self):
        findings = lint("def f(b):\n    new_block(b)\n", "repro/sim/engine.py")
        assert findings == []


class TestR002Determinism:
    def test_wall_clock_in_core_fires(self):
        findings = lint(
            "import time\n\ndef stamp():\n    return time.time()\n",
            "repro/core/buffercache.py",
        )
        assert rules(findings) == ["R002"]

    def test_datetime_now_fires(self):
        findings = lint(
            "from datetime import datetime\n\ndef f():\n    return datetime.now()\n",
            "repro/sim/engine.py",
        )
        assert rules(findings) == ["R002"]

    def test_unseeded_module_rng_fires(self):
        findings = lint(
            "import random\n\ndef f():\n    return random.randint(0, 9)\n",
            "repro/disk/model.py",
        )
        assert rules(findings) == ["R002"]

    def test_seeded_rng_instance_is_allowed(self):
        findings = lint(
            "import random\n\ndef f(seed):\n    return random.Random(seed).randint(0, 9)\n",
            "repro/disk/model.py",
        )
        assert findings == []

    def test_wall_clock_outside_core_is_allowed(self):
        findings = lint(
            "import time\n\ndef stamp():\n    return time.time()\n",
            "repro/harness/cli.py",
        )
        assert findings == []


class TestR004MutableState:
    def test_mutable_default_argument_fires(self):
        findings = lint("def f(xs=[]):\n    return xs\n", "repro/workloads/base.py")
        assert rules(findings) == ["R004"]

    def test_dict_call_default_fires(self):
        findings = lint("def f(m=dict()):\n    return m\n", "repro/core/acm.py")
        assert rules(findings) == ["R004"]

    def test_kwonly_mutable_default_fires(self):
        findings = lint("def f(*, xs={}):\n    return xs\n", "repro/sim/engine.py")
        assert rules(findings) == ["R004"]

    def test_none_default_is_allowed(self):
        findings = lint("def f(xs=None):\n    return xs or []\n", "repro/core/acm.py")
        assert findings == []

    def test_helper_scripts_are_out_of_scope(self):
        # Mutable defaults in throwaway scaffolding outside repro/ are the
        # author's business; the rule guards the shipped package only.
        findings = lint("def f(xs=[]):\n    return xs\n", "scripts/plot_results.py")
        assert findings == []

    def test_unfrozen_config_dataclass_fires(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class DiskParams:
                rpm: int = 5400
            """,
            "repro/disk/model.py",
        )
        assert rules(findings) == ["R004"]
        assert "frozen" in findings[0].message

    def test_frozen_config_dataclass_is_allowed(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class DiskParams:
                rpm: int = 5400
            """,
            "repro/disk/model.py",
        )
        assert findings == []

    def test_non_config_dataclass_may_be_mutable(self):
        findings = lint(
            """
            from dataclasses import dataclass

            @dataclass
            class RunningTotals:
                hits: int = 0
            """,
            "repro/core/buffercache.py",
        )
        assert findings == []


class TestR005OpConsumers:
    def test_isinstance_dispatch_outside_kernel_fires(self):
        findings = lint(
            """
            from repro.sim import ops

            def f(op):
                if isinstance(op, ops.BlockRead):
                    return op.blockno
            """,
            "repro/workloads/base.py",
        )
        assert rules(findings) == ["R005"]

    def test_tuple_of_ops_fires(self):
        findings = lint(
            """
            def f(op, BlockRead, BlockWrite):
                return isinstance(op, (BlockRead, BlockWrite))
            """,
            "repro/harness/cli.py",
        )
        assert rules(findings) == ["R005"]

    def test_kernel_is_allowed(self):
        findings = lint(
            """
            def f(op, BlockRead):
                return isinstance(op, BlockRead)
            """,
            "repro/kernel/system.py",
        )
        assert findings == []

    def test_unrelated_isinstance_is_allowed(self):
        findings = lint(
            "def f(x):\n    return isinstance(x, int)\n",
            "repro/workloads/base.py",
        )
        assert findings == []


class TestR006ServerLayering:
    def test_kernel_import_in_daemon_fires(self):
        findings = lint("import repro.kernel.system\n", "repro/server/daemon.py")
        assert rules(findings) == ["R006"]
        assert "service" in findings[0].message

    def test_core_from_import_fires(self):
        findings = lint(
            "from repro.core.buffercache import BufferCache\n",
            "repro/server/protocol.py",
        )
        assert rules(findings) == ["R006"]

    def test_relative_import_is_resolved(self):
        findings = lint("from ..core import acm\n", "repro/server/session.py")
        assert rules(findings) == ["R006"]

    def test_package_smuggling_fires(self):
        findings = lint("from repro import core\n", "repro/server/client.py")
        assert rules(findings) == ["R006"]

    def test_service_gate_is_allowed(self):
        findings = lint(
            "from repro.kernel.system import MachineConfig, System\nfrom repro.core.acm import ACM\n",
            "repro/server/service.py",
        )
        assert findings == []

    def test_protocol_only_imports_are_clean(self):
        findings = lint(
            "import asyncio\nfrom repro.server.protocol import Transport\nfrom repro.server.stats import SessionCounters\n",
            "repro/server/session.py",
        )
        assert findings == []

    def test_outside_server_package_is_allowed(self):
        findings = lint(
            "from repro.core.buffercache import BufferCache\n",
            "repro/harness/experiments.py",
        )
        assert findings == []


class TestR007BareIOErrors:
    def test_bare_oserror_raise_fires(self):
        findings = lint(
            "def f():\n    raise OSError('disk died')\n",
            "repro/disk/drive.py",
        )
        assert rules(findings) == ["R007"]
        assert "faults" in findings[0].message

    def test_bare_ioerror_without_call_fires(self):
        findings = lint("def f():\n    raise IOError\n", "repro/fs/syncer.py")
        assert rules(findings) == ["R007"]

    def test_faults_package_is_exempt(self):
        findings = lint(
            "def f():\n    raise OSError('simulated')\n",
            "repro/faults/errors.py",
        )
        assert findings == []

    def test_typed_fault_error_is_allowed(self):
        findings = lint(
            "from repro.faults import InjectedIOError\n"
            "def f():\n    raise InjectedIOError('hda', 4, write=True, kind='error')\n",
            "repro/kernel/system.py",
        )
        assert findings == []

    def test_catching_oserror_is_allowed(self):
        findings = lint(
            "def f(path):\n"
            "    try:\n"
            "        open(path)\n"
            "    except OSError:\n"
            "        pass\n",
            "repro/harness/cli.py",
        )
        assert findings == []

    def test_reraise_is_allowed(self):
        findings = lint(
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except OSError:\n"
            "        raise\n",
            "repro/fs/filesystem.py",
        )
        assert findings == []

    def test_outside_repro_tree_is_allowed(self):
        findings = lint("def f():\n    raise OSError('x')\n", "tools/helper.py")
        assert findings == []


class TestR003Registry:
    def _write_tree(self, tmp_path, registry, extra=""):
        pkg = tmp_path / "repro" / "policies"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "base.py").write_text(
            textwrap.dedent(
                """
                class EvictionPolicy:
                    def _on_hit(self, block): ...
                    def _on_insert(self, block): ...
                    def _choose_victim(self): ...
                """
            )
        )
        (pkg / "impl.py").write_text(textwrap.dedent(extra))
        (pkg / "registry.py").write_text(textwrap.dedent(registry))
        return tmp_path

    def test_good_registry_is_clean(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            registry="""
            from .impl import Good

            POLICY_FACTORIES = {"good": Good}
            """,
            extra="""
            from .base import EvictionPolicy

            class Good(EvictionPolicy):
                def _on_hit(self, block): ...
                def _on_insert(self, block): ...
                def _choose_victim(self):
                    return None
            """,
        )
        assert check_policy_registry(root) == []

    def test_non_subclass_fires(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            registry="""
            from .impl import Rogue

            POLICY_FACTORIES = {"rogue": Rogue}
            """,
            extra="""
            class Rogue:
                def _on_hit(self, block): ...
                def _on_insert(self, block): ...
                def _choose_victim(self): ...
            """,
        )
        findings = check_policy_registry(root)
        assert rules(findings) == ["R003"]
        assert "subclass" in findings[0].message

    def test_missing_hook_fires(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            registry="""
            from .impl import Lazy

            POLICY_FACTORIES = {"lazy": Lazy}
            """,
            extra="""
            class Lazy:
                pass
            """,
        )
        findings = check_policy_registry(root)
        messages = " ".join(f.message for f in findings)
        assert "_choose_victim" in messages

    def test_unknown_class_fires(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            registry="""
            POLICY_FACTORIES = {"ghost": Ghost}
            """,
        )
        findings = check_policy_registry(root)
        assert rules(findings) == ["R003"]


class TestR008Instrumentation:
    def test_counter_dict_bump_fires(self):
        findings = lint(
            "def f(stats):\n    stats['hits'] += 1\n",
            "repro/server/service.py",
        )
        assert rules(findings) == ["R008"]
        assert "telemetry" in findings[0].message

    def test_get_default_bump_fires(self):
        findings = lint(
            "def f(stats):\n    stats['misses'] = stats.get('misses', 0) + 1\n",
            "repro/trace/driver.py",
        )
        assert rules(findings) == ["R008"]

    def test_print_in_library_fires(self):
        findings = lint(
            "def f(x):\n    print('hit ratio', x)\n",
            "repro/core/buffercache.py",
        )
        assert rules(findings) == ["R008"]

    def test_telemetry_package_is_exempt(self):
        findings = lint(
            "def f(stats):\n    stats['hits'] += 1\n",
            "repro/telemetry/metrics.py",
        )
        assert findings == []

    def test_cli_layers_may_print(self):
        for relpath in (
            "repro/harness/cli.py",
            "repro/check/lint.py",
            "repro/server/daemon.py",
        ):
            assert lint("print('listening on ...')\n", relpath) == []

    def test_non_counter_subscripts_are_allowed(self):
        # Non-literal keys, non-numeric increments and non-add ops are all
        # legitimate dict updates, not counters.
        assert lint("def f(d, k):\n    d[k] += 1\n", "repro/core/acm.py") == []
        assert lint("def f(d):\n    d['xs'] += [1]\n", "repro/core/acm.py") == []
        assert lint("def f(d):\n    d['mask'] &= 3\n", "repro/core/acm.py") == []
        assert (
            lint("def f(d, v):\n    d['lba'] = v + 1\n", "repro/core/acm.py") == []
        )

    def test_outside_repro_is_allowed(self):
        assert lint("def f(d):\n    d['hits'] += 1\n", "tests/test_x.py") == []

    def test_local_scratch_dict_is_allowed(self):
        # A dict created and consumed inside one function is scratch state,
        # not instrumentation that belongs in the metrics registry.
        src = """
            def summarize(events):
                counts = {}
                for ev in events:
                    counts['seen'] += 1
                return counts
            """
        assert lint(src, "repro/core/acm.py") == []

    def test_local_dict_get_form_is_allowed(self):
        src = """
            def summarize(events):
                counts = dict()
                counts['seen'] = counts.get('seen', 0) + 1
                return counts
            """
        assert lint(src, "repro/core/acm.py") == []

    def test_dict_merge_get_form_is_allowed(self):
        # Merging two dicts key-by-key reads from a *different* receiver
        # than it writes — that's data plumbing, not a counter bump.
        src = """
            def merge(a, b, out):
                for k in b:
                    out[k] = a.get(k, 0) + b.get(k, 0)
            """
        assert lint(src, "repro/core/acm.py") == []

    def test_attribute_counter_dict_still_fires(self):
        # The local-dict exemption must not leak to shared state.
        src = """
            class S:
                def f(self):
                    self.stats['hits'] += 1
            """
        assert rules(lint(src, "repro/core/acm.py")) == ["R008"]


class TestR009DaemonFactory:
    def test_cache_daemon_outside_supervisor_fires(self):
        findings = lint(
            """
            from repro.server import CacheDaemon

            def rogue_shard(cfg):
                return CacheDaemon(cfg)
            """,
            "repro/cluster/health.py",
        )
        assert rules(findings) == ["R009"]
        assert "supervisor" in findings[0].message

    def test_attribute_call_fires_too(self):
        findings = lint(
            """
            from repro.server import daemon

            def rogue_shard(cfg):
                return daemon.CacheDaemon(cfg)
            """,
            "repro/cluster/client.py",
        )
        assert rules(findings) == ["R009"]

    def test_supervisor_is_the_factory(self):
        findings = lint(
            """
            from repro.server import CacheDaemon

            def build(cfg):
                return CacheDaemon(cfg)
            """,
            "repro/cluster/supervisor.py",
        )
        assert findings == []

    def test_outside_cluster_is_allowed(self):
        findings = lint(
            """
            from repro.server import CacheDaemon

            def build(cfg):
                return CacheDaemon(cfg)
            """,
            "repro/harness/cli.py",
        )
        assert findings == []


class TestR009VerbRegistry:
    REGISTRY = """
    KERNEL_VERBS = frozenset({"open", "read", "write", "stats"})
    PROTOCOL_VERBS = frozenset({"ping", "hello", "close"})
    """

    def _write_tree(self, tmp_path, module, registry=REGISTRY):
        server = tmp_path / "repro" / "server"
        server.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (server / "__init__.py").write_text("")
        (server / "protocol.py").write_text(textwrap.dedent(registry))
        (server / "router.py").write_text(textwrap.dedent(module))
        return tmp_path

    def test_declared_verbs_are_clean(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            """
            def dispatch(verb):
                if verb == "open":
                    return 1
                if verb in ("ping", "hello"):
                    return 2
            """,
        )
        assert check_verb_declarations(root) == []

    def test_undeclared_comparison_fires(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            """
            def dispatch(msg):
                if msg.verb == "frobnicate":
                    return 1
            """,
        )
        findings = check_verb_declarations(root)
        assert rules(findings) == ["R009"]
        assert "frobnicate" in findings[0].message

    def test_undeclared_verb_set_fires(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            """
            MY_VERBS = frozenset({"read", "bogus"})
            """,
        )
        findings = check_verb_declarations(root)
        assert rules(findings) == ["R009"]
        assert "bogus" in findings[0].message

    def test_non_verb_comparisons_are_ignored(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            """
            def f(policy):
                if policy == "lru-sp":
                    return 1
            """,
        )
        assert check_verb_declarations(root) == []

    def test_registry_without_sets_fires_at_registry(self, tmp_path):
        root = self._write_tree(
            tmp_path,
            "x = 1\n",
            registry="NOT_VERBS_AT_ALL = 3\n",
        )
        findings = check_verb_declarations(root)
        assert rules(findings) == ["R009"]
        assert findings[0].path == "repro/server/protocol.py"

    def test_tree_without_registry_is_skipped(self, tmp_path):
        (tmp_path / "repro").mkdir()
        (tmp_path / "repro" / "__init__.py").write_text("")
        (tmp_path / "repro" / "mod.py").write_text('VERBS = ["x"]\n')
        assert check_verb_declarations(tmp_path) == []


class TestR012WireRegistry:
    def _write_registry(self, tmp_path, registry):
        server = tmp_path / "repro" / "server"
        server.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (server / "__init__.py").write_text("")
        (server / "protocol.py").write_text(textwrap.dedent(registry))
        return tmp_path

    def test_complete_registry_is_clean(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            KERNEL_VERBS = frozenset({"read", "write"})
            PROTOCOL_VERBS = frozenset({"ping"})
            VERB_WIRE = {
                "read": (4, True),
                "write": (5, True),
                "ping": (2, False),
            }
            """,
        )
        assert check_verb_wire(root) == []

    def test_annotated_assignment_form_is_recognised(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            from typing import Dict, Tuple
            KERNEL_VERBS = frozenset({"read"})
            PROTOCOL_VERBS = frozenset({"ping"})
            VERB_WIRE: Dict[str, Tuple[int, bool]] = {
                "read": (4, True),
                "ping": (2, False),
            }
            """,
        )
        assert check_verb_wire(root) == []

    def test_missing_dict_fires(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            KERNEL_VERBS = frozenset({"read"})
            PROTOCOL_VERBS = frozenset({"ping"})
            """,
        )
        findings = check_verb_wire(root)
        assert rules(findings) == ["R012"]
        assert "VERB_WIRE" in findings[0].message

    def test_verb_without_entry_fires(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            KERNEL_VERBS = frozenset({"read", "write"})
            PROTOCOL_VERBS = frozenset({"ping"})
            VERB_WIRE = {
                "read": (4, True),
                "ping": (2, False),
            }
            """,
        )
        findings = check_verb_wire(root)
        assert rules(findings) == ["R012"]
        assert "'write'" in findings[0].message

    def test_duplicate_id_fires(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            KERNEL_VERBS = frozenset({"read", "write"})
            PROTOCOL_VERBS = frozenset()
            VERB_WIRE = {
                "read": (4, True),
                "write": (4, True),
            }
            """,
        )
        findings = check_verb_wire(root)
        assert rules(findings) == ["R012"]
        assert "reuses binary verb id 4" in findings[0].message

    def test_malformed_entry_fires(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            KERNEL_VERBS = frozenset({"read"})
            PROTOCOL_VERBS = frozenset()
            VERB_WIRE = {
                "read": (4, 1),
            }
            """,
        )
        findings = check_verb_wire(root)
        assert rules(findings) == ["R012"]
        assert "(int verb id, bool batchable)" in findings[0].message

    def test_undeclared_entry_fires(self, tmp_path):
        root = self._write_registry(
            tmp_path,
            """
            KERNEL_VERBS = frozenset({"read"})
            PROTOCOL_VERBS = frozenset()
            VERB_WIRE = {
                "read": (4, True),
                "bogus": (9, False),
            }
            """,
        )
        findings = check_verb_wire(root)
        assert rules(findings) == ["R012"]
        assert "'bogus'" in findings[0].message

    def test_real_registry_is_complete(self):
        from repro.server.protocol import ALL_VERBS, VERB_WIRE

        assert set(VERB_WIRE) == set(ALL_VERBS)
        ids = [wire_id for wire_id, _ in VERB_WIRE.values()]
        assert len(ids) == len(set(ids))
        # batch carriers wrap batchable ops
        assert VERB_WIRE["read"][1] and VERB_WIRE["write"][1]


class TestR011BenchmarkWrites:
    def test_json_dump_in_benchmark_fires(self):
        findings = lint(
            """
            import json

            def save(data, path):
                with open(path, "w") as fh:
                    json.dump(data, fh)
            """,
            "benchmarks/test_whatever.py",
        )
        assert rules(findings) == ["R011"]
        assert any("json.dump()" in f.message for f in findings)
        assert any(".perf/profiles" in f.message for f in findings)

    def test_write_text_and_dumps_fire(self):
        findings = lint(
            """
            import json
            from pathlib import Path

            def save(data):
                Path("out.json").write_text(json.dumps(data))
            """,
            "benchmarks/test_whatever.py",
        )
        assert [f.rule for f in findings] == ["R011", "R011"]

    def test_open_mode_keyword_fires(self):
        findings = lint(
            "def f(p, d):\n    open(p, mode='a').write(d)\n",
            "benchmarks/test_whatever.py",
        )
        assert rules(findings) == ["R011"]

    def test_read_mode_open_is_allowed(self):
        src = """
            def load(path):
                with open(path) as fh:
                    return fh.read()

            def load_binary(path):
                return open(path, "rb").read()
            """
        assert lint(src, "benchmarks/test_whatever.py") == []

    def test_conftest_is_exempt(self):
        src = "import json\n\ndef save(d, fh):\n    json.dump(d, fh)\n"
        assert lint(src, "benchmarks/conftest.py") == []

    def test_outside_benchmarks_is_unaffected(self):
        src = "import json\n\ndef save(d, fh):\n    json.dump(d, fh)\n"
        assert lint(src, "repro/harness/report.py") == []
        assert lint(src, "tools/test_gen.py") == []


class TestR013ReplicationMonopoly:
    FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

    def _expected(self, src):
        return sorted(
            lineno
            for lineno, line in enumerate(src.splitlines(), 1)
            if "EXPECT[R013]" in line
        )

    def test_positive_fixture_fires_on_every_marked_line(self):
        src = (self.FIXTURES / "r013_pos.py").read_text()
        findings = lint_source(src, "repro/cluster/health.py")
        got = sorted({f.line for f in findings if f.rule == "R013"})
        assert got == self._expected(src), findings

    def test_negative_fixture_is_clean(self):
        src = (self.FIXTURES / "r013_neg.py").read_text()
        findings = lint_source(src, "repro/cluster/client.py")
        assert [f for f in findings if f.rule == "R013"] == []

    def test_replication_module_is_exempt(self):
        src = (self.FIXTURES / "r013_pos.py").read_text()
        findings = lint_source(src, "repro/cluster/replication.py")
        assert [f for f in findings if f.rule == "R013"] == []

    def test_ring_may_call_replicas_but_not_send_verbs(self):
        findings = lint(
            """
            def spans(self, key, r):
                return self.replicas(key, r)
            """,
            "repro/cluster/ring.py",
        )
        assert [f for f in findings if f.rule == "R013"] == []
        findings = lint(
            """
            async def sneak(client, path):
                return await client.call("invalidate", path=path)
            """,
            "repro/cluster/ring.py",
        )
        assert rules(findings) == ["R013"]

    def test_outside_cluster_is_allowed(self):
        findings = lint(
            """
            def plans(ring, path, r):
                return ring.replicas(path, r)
            """,
            "repro/faults/replicas.py",
        )
        assert [f for f in findings if f.rule == "R013"] == []


class TestR014SeededWorkloadRandomness:
    FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

    def _expected(self, src):
        return sorted(
            lineno
            for lineno, line in enumerate(src.splitlines(), 1)
            if "EXPECT[R014]" in line
        )

    def test_positive_fixture_fires_on_every_marked_line(self):
        src = (self.FIXTURES / "r014_pos.py").read_text()
        findings = lint_source(src, "repro/workloads/rogue.py")
        got = sorted({f.line for f in findings if f.rule == "R014"})
        assert got == self._expected(src), findings

    def test_negative_fixture_is_clean(self):
        src = (self.FIXTURES / "r014_neg.py").read_text()
        findings = lint_source(src, "repro/workloads/production.py")
        assert [f for f in findings if f.rule == "R014"] == []

    def test_outside_workloads_is_unaffected(self):
        # the module-level RNG is R014's concern only inside the
        # generators (the deterministic core has its own rule, R002)
        src = "import random\n\ndef f():\n    return random.random()\n"
        findings = lint_source(src, "repro/harness/demo.py")
        assert [f for f in findings if f.rule == "R014"] == []

    def test_seeded_random_construction_is_allowed(self):
        findings = lint(
            """
            import random

            def rng_for(seed):
                return random.Random(seed)
            """,
            "repro/workloads/production.py",
        )
        assert [f for f in findings if f.rule == "R014"] == []

    def _registry_findings(self, tmp_path, production_src, registry_src):
        pkg = tmp_path / "repro" / "workloads"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "production.py").write_text(textwrap.dedent(production_src))
        (pkg / "registry.py").write_text(textwrap.dedent(registry_src))
        return check_workload_registry(tmp_path)

    REGISTRY_OK = """
        WORKLOADS = {"traffic": lambda **kw: ProductionTraffic(**kw)}
        PATTERNS = {"zipf": ZipfianPattern}
        PROFILES = {"etc": etc_profile}
    """

    def test_unregistered_pattern_class_fires(self, tmp_path):
        findings = self._registry_findings(
            tmp_path,
            """
            class KeyPattern:
                pass

            class ZipfianPattern(KeyPattern):
                pass

            class RoguePattern(KeyPattern):
                pass
            """,
            self.REGISTRY_OK,
        )
        assert rules(findings) == ["R014"]
        assert "RoguePattern" in findings[0].message
        # the in-file base class is not itself registrable
        assert all("KeyPattern" not in f.message for f in findings)

    def test_unregistered_workload_and_profile_fire(self, tmp_path):
        findings = self._registry_findings(
            tmp_path,
            """
            class ShadowTraffic(Workload):
                pass

            def burst_profile(paths=10):
                return None
            """,
            self.REGISTRY_OK,
        )
        assert rules(findings) == ["R014"]
        messages = " ".join(f.message for f in findings)
        assert "ShadowTraffic" in messages and "burst_profile" in messages

    def test_fully_registered_kit_is_clean(self, tmp_path):
        findings = self._registry_findings(
            tmp_path,
            """
            class KeyPattern:
                pass

            class ZipfianPattern(KeyPattern):
                pass

            class ProductionTraffic(Workload):
                pass

            def etc_profile(paths=10):
                return None
            """,
            self.REGISTRY_OK,
        )
        assert findings == []

    def test_missing_registry_dict_reported_once(self, tmp_path):
        findings = self._registry_findings(
            tmp_path,
            "class ZipfianPattern:\n    pass\n",
            'WORKLOADS = {"x": ZipfianPattern}\n',
        )
        assert rules(findings) == ["R014"]
        assert "PATTERNS" in findings[0].message and "PROFILES" in findings[0].message

    def test_real_workload_registry_is_clean(self):
        assert check_workload_registry(SRC_ROOT) == []


class TestRealTree:
    def test_src_is_clean(self):
        findings = lint_tree(SRC_ROOT)
        assert findings == [], render(findings)

    def test_real_registry_is_clean(self):
        assert check_policy_registry(SRC_ROOT) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        assert main([str(SRC_ROOT / "repro" / "core")]) == 0
        bad = tmp_path / "repro" / "sim"
        bad.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (bad / "__init__.py").write_text("")
        (bad / "rogue.py").write_text("import time\n\ndef f():\n    return time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out

    def test_main_rejects_missing_path(self, capsys):
        # exit 2 distinguishes analyzer/usage errors from findings (exit 1)
        assert main(["/no/such/tree"]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n", "repro/core/x.py")
        assert rules(findings) == ["R000"]

    def test_finding_str_is_clickable(self):
        f = Finding("R001", "repro/sim/engine.py", 12, "msg")
        assert str(f) == "repro/sim/engine.py:12: R001 msg"
