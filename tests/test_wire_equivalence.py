"""Cross-framing differential battery: JSON ≡ binary ≡ binary+batched.

The same four-client workload (disjoint files, no eviction — so per-pid
counters are interleaving-independent) is replayed three ways: over the
JSON framing, over the negotiated binary framing, and over binary with
consecutive block ops coalesced into ``readv``/``writev`` batches.  All
three runs must produce *identical* per-pid counters, cache occupancy,
cache snapshots and flush totals — and must match a serial
:class:`repro.kernel.system.System` run of the same scripts.

The bottom half of the file pins the codec itself: a round-trip corpus
across both framings (packed fast paths, JSON fallbacks, every error
code), seeded random message round-trips, mixed-framing streams through
one decoder, and the hello negotiation matrix.
"""

import asyncio
import random

import pytest

from repro.kernel.system import MachineConfig, System
from repro.server import CacheClient, CacheDaemon, build_config
from repro.server.client import ServerError
from repro.server.protocol import (
    ERROR_CODES,
    WIRE_BINARY,
    WIRE_JSON,
    FrameDecoder,
    encode_frame,
    encode_message,
    error_response,
    ok_response,
    request,
)
from repro.sim.ops import BlockRead, BlockWrite
from repro.workloads.base import set_policy, set_priority, set_temppri

# -- the shared scripts ----------------------------------------------------

CACHE_MB = 2  # 256 frames; the scripts touch 90 distinct blocks — no eviction
BATCH_LIMIT = 32  # max ops coalesced into one readv/writev frame

#: (wire, batched) — the three wire paths under test
VARIANTS = [(WIRE_JSON, False), (WIRE_BINARY, False), (WIRE_BINARY, True)]


def _scan(path, nblocks, passes):
    return [("read", path, b) for _ in range(passes) for b in range(nblocks)]


def _scripts():
    sym = [  # cscope-symbol-like: smart, MRU over one priority pool
        ("set_priority", "sym", 0),
        ("set_policy", 0, "mru"),
    ] + _scan("sym", 24, 3)
    text = [  # cscope-text-like: smart LRU, free-behind on the first pass
        ("set_priority", "text", 0),
        ("set_policy", 0, "lru"),
    ]
    for b in range(20):
        text.append(("read", "text", b))
        text.append(("set_temppri", "text", b, b, -1))
    text += _scan("text", 20, 1)
    sort = [("write", "out", b) for b in range(16)] + _scan("out", 16, 1)
    seq = _scan("seq", 30, 2)  # oblivious sequential reader
    return {
        "sym": (24, sym),
        "text": (20, text),
        "out": (16, sort),
        "seq": (30, seq),
    }


def _grouped(steps):
    """Coalesce consecutive same-verb block ops into batch entries.

    Yields ``("readv", [(path, blockno), ...])``, ``("writev", [...])`` or
    ``("step", original_step)`` — directives break a run, preserving the
    exact reference-stream order the singles variant produces.
    """
    grouped = []
    for step in steps:
        verb = step[0]
        if verb in ("read", "write"):
            batch_verb = "readv" if verb == "read" else "writev"
            if (
                grouped
                and grouped[-1][0] == batch_verb
                and len(grouped[-1][1]) < BATCH_LIMIT
            ):
                grouped[-1][1].append((step[1], step[2]))
            else:
                grouped.append((batch_verb, [(step[1], step[2])]))
        else:
            grouped.append(("step", step))
    return grouped


async def _run_single_step(client, step):
    verb = step[0]
    if verb == "read":
        await client.read(step[1], step[2])
    elif verb == "write":
        await client.write(step[1], step[2], whole=True)
    elif verb == "set_priority":
        await client.set_priority(step[1], step[2])
    elif verb == "set_policy":
        await client.set_policy(step[1], step[2])
    else:
        await client.set_temppri(step[1], step[2], step[3], step[4])


async def _run_script(client, steps, batched):
    if not batched:
        for step in steps:
            await _run_single_step(client, step)
        return
    for kind, payload in _grouped(steps):
        if kind == "readv":
            results = await client.readv(payload)
            assert all("hit" in r for r in results), results
        elif kind == "writev":
            results = await client.writev([(p, b, True) for p, b in payload])
            assert all("hit" in r for r in results), results
        else:
            await _run_single_step(client, payload)


async def _drive_daemon(scripts, wire, batched):
    """One full workload run; returns the behavioral fingerprint."""
    daemon = CacheDaemon(build_config(cache_mb=CACHE_MB, sanitize=True))
    clients = {}
    for path, (nblocks, _) in scripts.items():  # sequential: pids 1..4
        client = await CacheClient.connect_inproc(daemon, name=path, wire=wire)
        assert client.wire == wire  # negotiation landed where we asked
        await client.open(path, size_blocks=nblocks)
        clients[path] = client

    await asyncio.gather(
        *(
            _run_script(clients[path], steps, batched)
            for path, (_, steps) in scripts.items()
        )
    )
    occupancy = dict(daemon.service.cache.occupancy())
    snapshot = daemon.service.cache_snapshot()
    for client in clients.values():
        await client.aclose()
    summary = await daemon.aclose()  # flushes dirty blocks
    daemon.service.cache.sanitizer.check_now("final")
    assert daemon.errors == []
    counters = {
        pid: daemon.service.counters_for(pid).as_dict()
        for pid in sorted(daemon.service.counters)
    }
    return {
        "counters": counters,
        "occupancy": occupancy,
        "cache": snapshot,
        "flushed": summary["flushed_blocks"],
        "ops_served": daemon.ops_served,
    }


def _drive_system(scripts):
    config = MachineConfig(cache_mb=CACHE_MB, readahead=False, sanitize=True)
    system = System(config)

    def program(steps):
        for step in steps:
            verb = step[0]
            if verb == "read":
                yield BlockRead(step[1], step[2])
            elif verb == "write":
                yield BlockWrite(step[1], step[2], whole=True)
            elif verb == "set_priority":
                yield set_priority(step[1], step[2])
            elif verb == "set_policy":
                yield set_policy(step[1], step[2])
            else:
                yield set_temppri(step[1], step[2], step[3], step[4])

    for path, (nblocks, steps) in scripts.items():  # spawn order = pids 1..4
        system.add_file(path, nblocks=nblocks)
        system.spawn(path, program(steps))
    result = system.run(settle=True)
    system.cache.sanitizer.check_now("final")
    return {
        "stats": {p.pid: p.stats for p in result.procs.values()},
        "occupancy": dict(system.cache.occupancy()),
    }


# -- the differential battery ---------------------------------------------


@pytest.fixture(scope="module")
def fingerprints():
    scripts = _scripts()
    runs = {
        (wire, batched): asyncio.run(_drive_daemon(scripts, wire, batched))
        for wire, batched in VARIANTS
    }
    return runs, _drive_system(scripts)


def test_all_framings_are_behaviorally_identical(fingerprints):
    runs, _ = fingerprints
    reference = runs[(WIRE_JSON, False)]
    for variant, run in runs.items():
        assert run["counters"] == reference["counters"], variant
        assert run["occupancy"] == reference["occupancy"], variant
        assert run["cache"] == reference["cache"], variant
        assert run["flushed"] == reference["flushed"], variant


def test_every_framing_matches_the_serial_simulator(fingerprints):
    runs, sim = fingerprints
    for variant, run in runs.items():
        assert sorted(run["counters"]) == sorted(sim["stats"]) == [1, 2, 3, 4]
        for pid, stats in sim["stats"].items():
            entry = run["counters"][pid]
            for field in (
                "accesses",
                "hits",
                "misses",
                "disk_reads",
                "disk_writes",
                "directives",
            ):
                assert entry[field] == getattr(stats, field), (variant, pid, field)
        assert run["occupancy"] == sim["occupancy"], variant


def test_block_ios_match_across_framings(fingerprints):
    runs, sim = fingerprints
    sim_ios = sum(s.disk_reads + s.disk_writes for s in sim["stats"].values())
    for variant, run in runs.items():
        run_ios = sum(
            e["disk_reads"] + e["disk_writes"] for e in run["counters"].values()
        )
        assert run_ios == sim_ios == 74 + 16, variant


def test_batching_actually_batched(fingerprints):
    runs, _ = fingerprints
    # Same kernel ops either way; the batched run just used fewer frames.
    assert (
        runs[(WIRE_BINARY, True)]["ops_served"]
        == runs[(WIRE_BINARY, False)]["ops_served"]
    )


# -- error-code equivalence ------------------------------------------------


async def _error_battery(wire):
    daemon = CacheDaemon(build_config(cache_mb=CACHE_MB))
    client = await CacheClient.connect_inproc(daemon, name="err", wire=wire)
    await client.open("f", size_blocks=4)
    outcomes = []
    probes = [
        client.read("missing", 0),  # FS: unknown file
        client.read("f", 99),  # FS: past EOF
        client.set_policy(0, "bogus"),  # DIRECTIVE
        client.call("read", path="f", blockno=-1),  # BAD_REQUEST
        client.call("read", path="", blockno=0),  # BAD_REQUEST: empty path
        client.call("readv", ops=[]),  # BAD_REQUEST: empty batch
        client.call("readv", ops="nope"),  # BAD_REQUEST: non-list ops
        client.call("frobnicate"),  # BAD_REQUEST: unknown verb
    ]
    for probe in probes:
        try:
            await probe
            outcomes.append("OK")
        except ServerError as exc:
            outcomes.append(exc.code)
    # Partial-batch failure: per-op codes, good ops still applied.
    batch = await client.readv([("f", 0), ("f", 99), ("missing", 0), ("f", 1)])
    outcomes.append([r.get("code", "OK") for r in batch])
    stats = await client.stats()
    outcomes.append(stats["cache"]["accesses"])
    await client.aclose()
    await daemon.aclose()
    assert daemon.errors == []  # never INTERNAL
    return outcomes


def test_error_codes_identical_across_framings():
    json_run = asyncio.run(_error_battery(WIRE_JSON))
    binary_run = asyncio.run(_error_battery(WIRE_BINARY))
    assert json_run == binary_run
    assert json_run[:8] == [
        "FS",
        "FS",
        "DIRECTIVE",
        "BAD_REQUEST",
        "BAD_REQUEST",
        "BAD_REQUEST",
        "BAD_REQUEST",
        "BAD_REQUEST",
    ]
    assert json_run[8] == ["OK", "FS", "FS", "OK"]


def test_batch_per_op_errors_match_singles():
    async def singles(wire):
        daemon = CacheDaemon(build_config(cache_mb=CACHE_MB))
        client = await CacheClient.connect_inproc(daemon, wire=wire)
        await client.open("f", size_blocks=4)
        ops = [("f", 0), ("f", 9), ("missing", 1), ("f", 1)]
        one_by_one = []
        for path, blockno in ops:
            try:
                one_by_one.append({"hit": await client.read(path, blockno)})
            except ServerError as exc:
                one_by_one.append({"code": exc.code})
        await client.aclose()
        await daemon.aclose()
        return one_by_one

    async def batched(wire):
        daemon = CacheDaemon(build_config(cache_mb=CACHE_MB))
        client = await CacheClient.connect_inproc(daemon, wire=wire)
        await client.open("f", size_blocks=4)
        results = await client.readv([("f", 0), ("f", 9), ("missing", 1), ("f", 1)])
        await client.aclose()
        await daemon.aclose()
        return [
            {"hit": r["hit"]} if "hit" in r else {"code": r["code"]} for r in results
        ]

    for wire in (WIRE_JSON, WIRE_BINARY):
        assert asyncio.run(singles(wire)) == asyncio.run(batched(wire))


# -- codec round trips -----------------------------------------------------


ROUND_TRIP_CORPUS = [
    # packed fast paths
    request(1, "read", path="f", blockno=0),
    request(2, "read", path="a/übersicht.db", blockno=2**40),
    request(3, "write", path="f", blockno=7, whole=True),
    request(4, "write", path="f", blockno=7, whole=False),
    request(5, "readv", ops=[{"path": "f", "blockno": 1}, {"path": "g", "blockno": 2}]),
    request(
        6,
        "writev",
        ops=[
            {"path": "f", "blockno": 1, "whole": True},
            {"path": "g", "blockno": 0, "whole": False},
        ],
    ),
    # JSON-params payloads inside binary frames
    request(7, "open", path="f", size_blocks=64),
    request(8, "stats"),
    request(9, "hello", name="c1", wire=["binary"]),
    request(10, "set_temppri", path="f", start=0, end=5, prio=-1),
    request(11, "metrics", format="prometheus"),
    {"id": None, "verb": "ping"},
    # whole-JSON fallbacks (unrepresentable in the packed forms)
    request(12, "read", path="x" * 70_000, blockno=1),  # path > u16
    request(2**70, "read", path="f", blockno=0),  # id > i64
    request(13, "read", path="f", blockno=-1),  # negative blockno
    {"id": 14, "verb": "unregistered-verb", "x": 1},
    # replies
    ok_response(1, {"hit": True}),
    ok_response(2, {"hit": False}),
    ok_response(3, {"results": [{"hit": True}, {"code": "FS", "error": "nope"}]}),
    ok_response(4, {"pid": 3, "name": "c", "token": "tok-3-1", "resumed": False}),
    ok_response(5, None),
    ok_response(6, [1, "two", None, {"three": 3}]),
    ok_response(None, {"hit": True}),
] + [error_response(n, code, f"boom {code} ü") for n, code in enumerate(ERROR_CODES)]


@pytest.mark.parametrize("wire", [WIRE_JSON, WIRE_BINARY])
def test_round_trip_corpus(wire):
    for msg in ROUND_TRIP_CORPUS:
        frames = FrameDecoder().feed(encode_message(msg, wire))
        assert frames == [msg], msg


def test_mixed_framing_stream_decodes_in_order():
    stream = b""
    for index, msg in enumerate(ROUND_TRIP_CORPUS):
        wire = WIRE_BINARY if index % 2 else WIRE_JSON
        stream += encode_message(msg, wire)
    assert FrameDecoder().feed(stream) == ROUND_TRIP_CORPUS


def test_byte_at_a_time_feeding():
    msgs = ROUND_TRIP_CORPUS[:8]
    stream = b"".join(encode_message(m, WIRE_BINARY) for m in msgs)
    decoder = FrameDecoder()
    out = []
    for i in range(len(stream)):
        out.extend(decoder.feed(stream[i:i + 1]))
    assert out == msgs
    assert decoder.pending_bytes == 0


def test_seeded_random_messages_round_trip():
    rng = random.Random(0xACFC)

    def junk_value(depth=0):
        pick = rng.randrange(8 if depth < 2 else 6)
        if pick == 0:
            return rng.randrange(-(2**40), 2**40)
        if pick == 1:
            return rng.choice([True, False, None])
        if pick == 2:
            return "".join(
                rng.choice("abĉ∂ e/.-_0") for _ in range(rng.randrange(12))
            )
        if pick == 3:
            return rng.random()
        if pick == 4:
            return rng.randrange(2**64, 2**80)  # beyond the packed ranges
        if pick == 5:
            return ""
        if pick == 6:
            return [junk_value(depth + 1) for _ in range(rng.randrange(4))]
        return {f"k{i}": junk_value(depth + 1) for i in range(rng.randrange(4))}

    verbs = ["read", "write", "readv", "writev", "open", "stats", "hello", "ping"]
    for case in range(300):
        if case % 3 == 0:
            msg = {"id": rng.randrange(2**40), "verb": rng.choice(verbs)}
            for key in ("path", "blockno", "ops", "whole", "extra"):
                if rng.random() < 0.5:
                    msg[key] = junk_value()
        elif case % 3 == 1:
            msg = ok_response(rng.randrange(2**40), junk_value())
        else:
            msg = error_response(
                rng.randrange(2**40), rng.choice(ERROR_CODES), str(junk_value())
            )
        encoded = encode_message(msg, WIRE_BINARY)
        assert FrameDecoder().feed(encoded) == [msg], msg


# -- negotiation matrix ----------------------------------------------------


def test_negotiation_matrix():
    async def matrix():
        daemon = CacheDaemon(build_config(cache_mb=CACHE_MB))
        # new client offering binary → binary; explicit json → json
        binary_client = await CacheClient.connect_inproc(daemon, wire=WIRE_BINARY)
        json_client = await CacheClient.connect_inproc(daemon, wire=WIRE_JSON)
        assert binary_client.wire == WIRE_BINARY
        assert json_client.wire == WIRE_JSON
        # both coexist on one daemon and serve the same answers
        await binary_client.open("m", size_blocks=4)
        await json_client.open("n", size_blocks=4)
        assert await binary_client.read("m", 0) is False
        assert await binary_client.read("m", 0) is True
        assert await json_client.read("n", 0) is False
        # an old-style hello (no wire offer) stays on JSON
        raw = await json_client.call("hello")
        assert raw["wire"] == WIRE_JSON
        # a fuzzer's junk offer is ignored, not fatal
        raw = await json_client.call("hello", wire={"bogus": 1})
        assert raw["wire"] == WIRE_JSON
        raw = await json_client.call("hello", wire=[42, "BINARY", None])
        assert raw["wire"] == WIRE_JSON
        await binary_client.aclose()
        await json_client.aclose()
        await daemon.aclose()
        assert daemon.errors == []

    asyncio.run(matrix())
