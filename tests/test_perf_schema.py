"""Schema discipline across every benchmark emitter.

Static sweeps (no benchmarks are executed): every ``benchmarks/test_*.py``
records into the perf store via the ``perf_profile`` fixture, none writes
results ad hoc (lint rule R011), and the committed reference baseline
under ``.perf/baseline/`` validates against the profile schema.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.check.lint import lint_source
from repro.perf import GATED_FAMILIES, Profile, validate_profile

REPO = Path(__file__).resolve().parent.parent
BENCHMARKS = sorted((REPO / "benchmarks").glob("test_*.py"))
BASELINE_DIR = REPO / ".perf" / "baseline"


def test_benchmark_modules_found():
    assert len(BENCHMARKS) >= 12  # the sweep below must actually sweep


@pytest.mark.parametrize("path", BENCHMARKS, ids=lambda p: p.stem)
def test_every_benchmark_records_a_perf_profile(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    uses = {
        arg.arg
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for arg in node.args.args
    }
    assert "perf_profile" in uses, (
        f"{path.name} never requests the perf_profile fixture — every "
        "benchmark module must file metrics into the perf store"
    )


@pytest.mark.parametrize("path", BENCHMARKS + [REPO / "benchmarks" / "conftest.py"],
                         ids=lambda p: p.stem)
def test_no_ad_hoc_result_writes(path):
    findings = lint_source(path.read_text(), f"benchmarks/{path.name}")
    r011 = [f for f in findings if f.rule == "R011"]
    assert not r011, "\n".join(str(f) for f in r011)


def test_r011_exempts_conftest_and_catches_writers():
    bad = "import json\n\ndef save(d):\n    json.dump(d, open('x.json', 'w'))\n"
    findings = lint_source(bad, "benchmarks/test_fake.py")
    rules = [f.rule for f in findings]
    assert rules.count("R011") == 2  # json.dump and open(..., 'w')
    assert not [f for f in lint_source(bad, "benchmarks/conftest.py")
                if f.rule == "R011"]
    # outside benchmarks/ the rule does not apply
    assert not [f for f in lint_source(bad, "tools/test_fake.py")
                if f.rule == "R011"]


def test_r011_flags_write_text_and_dumps():
    source = (
        "import json, pathlib\n"
        "def emit(data):\n"
        "    pathlib.Path('out.json').write_text(json.dumps(data))\n"
        "def read(path):\n"
        "    return open(path).read()\n"  # read-mode open stays legal
    )
    findings = [f for f in lint_source(source, "benchmarks/test_fake.py")
                if f.rule == "R011"]
    assert len(findings) == 2
    assert all(f.line == 3 for f in findings)


# -- the committed baseline ------------------------------------------------


def test_committed_baseline_exists_for_every_gated_family():
    missing = [family for family in GATED_FAMILIES
               if not (BASELINE_DIR / f"{family}.json").exists()]
    assert not missing, (
        f"no committed baseline for {missing} — run the gated benchmarks "
        "and 'repro-accfc perf promote' (docs/perf.md)"
    )


@pytest.mark.parametrize("family", sorted(GATED_FAMILIES))
def test_committed_baseline_validates(family):
    path = BASELINE_DIR / f"{family}.json"
    if not path.exists():
        pytest.skip("baseline not seeded yet (covered by the existence test)")
    data = json.loads(path.read_text())
    assert validate_profile(data) == []
    profile = Profile.from_json(data)
    assert profile.reference is True, "committed baselines must be marked reference"
    assert profile.family == family
    gate = GATED_FAMILIES[family]
    for metric in gate.metrics:
        assert metric in profile.metrics, (
            f"baseline {family} lacks gated metric {metric}"
        )
        best = profile.metrics[metric].best()
        assert best is not None and best > 0
