"""R013 positives: a cluster module growing its own replication path.

Each marked line is a shape the rule must catch when this file lives
anywhere under ``repro/cluster/`` other than ``replication.py``: raw
replica-set lookups, replication verbs sent over the wire, and a private
dispatch on the replication protocol.
"""


async def stale_fanout(ring, client, path):
    owners = ring.replicas(path, 2)  # EXPECT[R013]
    for _ in owners:
        await client.call("invalidate", path=path)  # EXPECT[R013]


async def private_migration(client, paths):
    begin = await client.call("migrate_begin", paths=paths)  # EXPECT[R013]
    return begin["token"]


def private_dispatch(verb):
    if verb == "migrate_chunk":  # EXPECT[R013]
        return "pull"
    if verb in ("migrate_end", "declare_bundle"):  # EXPECT[R013]
        return "finish"
    return None
