"""F001 positives: read-modify-write of shared state spanning an await.

Both shapes from the daemon's shutdown bug family: a snapshot taken
before an await and written back after it, and a check-then-act guard
whose test goes stale while the coroutine is suspended.
"""

import asyncio


class Counter:
    def __init__(self):
        self.total = 0
        self.closed = False

    async def bump(self, delta):
        snapshot = self.total
        await asyncio.sleep(0)
        self.total = snapshot + delta  # EXPECT[F001]

    async def close_once(self):
        if self.closed:
            return
        await asyncio.sleep(0)
        self.closed = True  # EXPECT[F001]
