"""F004 near-misses: the same flows with validation at the boundary.

Coercing through ``int()``, checking ``isinstance`` with an early raise,
and passing values through a ``validated_*`` helper all count as
sanitizing the wire input before it reaches the service.
"""


class Handler:
    def __init__(self, service):
        self.service = service

    def apply(self, msg):
        blockno = int(msg.get("blockno"))
        return self.service.read(0, "fixed", blockno)

    def typed(self, msg):
        path = msg.get("path")
        if not isinstance(path, str):
            raise ValueError(path)
        return self.service.read(0, path, 0)

    def helper(self, msg):
        fields = validated_request(msg)
        return self.service.directive(0, "set_priority", fields)
