"""F003 near-misses: every coroutine is awaited and every handle kept.

The spawned task is stored in a collection (so its exceptions have an
owner), and a handle that is awaited before the function returns is not
fire-and-forget.
"""

import asyncio


class Launcher:
    def __init__(self):
        self._tasks = set()

    async def tick(self):
        pass

    async def run(self):
        await self.tick()
        task = asyncio.get_running_loop().create_task(self.tick())
        self._tasks.add(task)
        later = asyncio.ensure_future(self.tick())
        await later
