"""F002 near-misses: the same calls where blocking is harmless.

Synchronous methods may block; awaited sleeps are the async idiom; a
``while True`` that awaits each iteration yields to the loop; a nested
synchronous ``def`` runs outside the coroutine's body.
"""

import asyncio
import time


class Sleeper:
    def warm_up(self):
        time.sleep(0.1)

    async def pause(self):
        await asyncio.sleep(0.1)

    async def spin(self):
        while True:
            await asyncio.sleep(1)

    async def helper_scope(self):
        def inner():
            return open("/tmp/data")

        return inner
