"""F002 positives: blocking calls and busy loops inside ``async def``."""

import time


class Poller:
    async def wait_for_data(self):
        time.sleep(0.1)  # EXPECT[F002]
        with open("/tmp/data") as fh:  # EXPECT[F002]
            return fh.read()

    async def spin(self):
        while True:  # EXPECT[F002]
            pass
