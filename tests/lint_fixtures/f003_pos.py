"""F003 positives: un-awaited coroutines and leaked task handles."""

import asyncio


class Launcher:
    async def tick(self):
        pass

    async def run(self):
        self.tick()  # EXPECT[F003]
        asyncio.get_running_loop().create_task(self.tick())  # EXPECT[F003]
        handle = asyncio.ensure_future(self.tick())  # EXPECT[F003]
        return None
