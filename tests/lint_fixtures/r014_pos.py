"""R014 positives: a workload generator leaning on the module-level RNG.

Each marked line is a shape the rule must catch when this file lives
anywhere under ``repro/workloads/``: direct module-level draws, draws
used inline in expressions, and an unseeded ``random.Random()`` — every
one of them breaks "identical seeds reproduce identical streams".
"""

import random


def sample_key(paths):
    return random.randrange(paths)  # EXPECT[R014]


def mixed_stream(count):
    ops = []
    for _ in range(count):
        if random.random() < 0.95:  # EXPECT[R014]
            ops.append("r")
        else:
            ops.append("w")
    random.shuffle(ops)  # EXPECT[R014]
    return ops


def fresh_rng():
    return random.Random()  # EXPECT[R014]


def jittered_gap(rate):
    return random.expovariate(rate)  # EXPECT[R014]
