"""F005 near-misses: gate released before awaiting, consistent order.

Work done under the gate is synchronous; the await happens after the
``async with`` block exits.  Both multi-lock functions acquire in the
same a-then-b order, so no inversion exists.
"""

import asyncio


class Daemon:
    def __init__(self):
        self._kernel_gate = asyncio.Lock()
        self._a_lock = asyncio.Lock()
        self._b_lock = asyncio.Lock()

    async def apply(self):
        async with self._kernel_gate:
            result = self.compute()
        await self.publish(result)

    def compute(self):
        return 1

    async def publish(self, result):
        pass

    async def ab_once(self):
        async with self._a_lock:
            async with self._b_lock:
                pass

    async def ab_again(self):
        async with self._a_lock:
            async with self._b_lock:
                pass
