"""F001 near-misses: the same surface shapes, with the hazard removed.

``set_fresh`` re-reads after the await (no stale snapshot crosses it);
``locked_bump`` holds a lock across the whole read-modify-write;
``flag_first`` flips its guard before the first await, so no other
caller can pass the guard during the suspension.
"""

import asyncio


class Gauge:
    def __init__(self):
        self.value = 0
        self.closed = False
        self._lock = asyncio.Lock()

    async def set_fresh(self, delta):
        await asyncio.sleep(0)
        snapshot = self.value
        self.value = snapshot + delta

    async def locked_bump(self, delta):
        async with self._lock:
            snapshot = self.value
            await asyncio.sleep(0)
            self.value = snapshot + delta

    async def flag_first(self):
        if self.closed:
            return
        self.closed = True
        await asyncio.sleep(0)
