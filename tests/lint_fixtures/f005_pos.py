"""F005 positives: awaiting under the kernel gate, inverted lock order."""

import asyncio


class Daemon:
    def __init__(self):
        self._kernel_gate = asyncio.Lock()
        self._a_lock = asyncio.Lock()
        self._b_lock = asyncio.Lock()

    async def apply(self):
        async with self._kernel_gate:
            await asyncio.sleep(0)  # EXPECT[F005]

    async def ab(self):
        async with self._a_lock:
            async with self._b_lock:
                pass

    async def ba(self):
        async with self._b_lock:
            async with self._a_lock:  # EXPECT[F005]
                pass
