"""R014 negatives: the blessed shapes for workload randomness.

Seeded ``random.Random(seed)`` construction, draws through an rng
instance passed in or stored on self, and non-RNG uses of names that
merely resemble the random module.
"""

import random


def make_rng(seed):
    return random.Random(seed)


def sample_key(rng, paths):
    return rng.randrange(paths)


class SeededPattern:
    def __init__(self, seed):
        self.rng = random.Random(seed)

    def draw(self, paths):
        if self.rng.random() < 0.5:
            return 0
        return self.rng.randrange(paths)


def derived_stream(seed, salt):
    rng = random.Random((seed ^ salt) & 0xFFFFFFFF)
    return [rng.expovariate(100.0) for _ in range(4)]


def not_the_module(random_table):
    # attribute access on a local that happens to be named like the
    # module is not a module-level draw
    return random_table.lookup("x")
