"""F004 positives: wire-decoded values reaching kernel-facing calls raw."""


class Handler:
    def __init__(self, service):
        self.service = service

    def apply(self, msg):
        path = msg.get("path")
        return self.service.read(0, path, msg.get("blockno"))  # EXPECT[F004]

    def forward(self, msg):
        return self.service.directive(0, "set_priority", msg)  # EXPECT[F004]
