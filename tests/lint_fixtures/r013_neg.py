"""R013 near-misses: cluster code that stays on the right side of the
line.

Delegating to the replication manager, routing plain verbs, naming a
method ``invalidate`` and comparing non-replication verbs are all fine —
only raw replica-set lookups and replication verbs on the wire are the
replication module's monopoly.
"""


async def delegated_invalidate(replication_mgr, path):
    # delegation to the replication module is the sanctioned path
    return await replication_mgr.invalidate(path)


async def plain_routing(ring, client, path, blockno):
    sid = ring.shard_for(path)
    del sid
    return await client.call("read", path=path, blockno=blockno)


async def invalidate(self, path):
    # a method merely *named* invalidate is not a wire verb
    return await self.replication.invalidate(path)


def plain_dispatch(verb):
    if verb == "read":
        return "routed"
    if verb in ("flush", "stats"):
        return "fanout"
    return None


def replica_count_attribute(manager):
    # attribute reads named 'replicas' (the degree) are not lookups
    return manager.replicas
