"""The runtime sanitizer: invariants hold on correct code, break on bugs."""

import pytest

from conftest import make_cache, touch
from repro.check.invariants import (
    InvariantChecker,
    InvariantViolation,
    install_auto_sanitizer,
)
from repro.core.acm import ACM
from repro.core.allocation import LRU_S, LRU_SP
from repro.core.buffercache import CacheFullError
from repro.kernel.system import MachineConfig, System
from repro.workloads.readn import ReadN, ReadNBehavior


def overrule_once(cache):
    """Drive one LRU-SP overrule: an MRU manager keeps the kernel's LRU
    candidate and gives up its newest block instead."""
    acm = cache.acm
    acm.register(1)
    acm.set_policy(1, 0, "mru")
    for b in range(cache.nframes):
        touch(cache, 1, 1, b)
    touch(cache, 1, 1, cache.nframes)  # miss: candidate=oldest, manager picks newest


class TestCleanRuns:
    def test_checker_attach_detach(self):
        cache = make_cache(nframes=8)
        checker = InvariantChecker(cache)
        assert cache.sanitizer is checker
        assert cache.acm.observer is checker
        touch(cache, 1, 1, 0)
        assert checker.sweeps >= 1
        checker.detach()
        assert cache.sanitizer is None

    def test_mixed_directive_workload_is_clean(self):
        cache = make_cache(nframes=6)
        checker = InvariantChecker(cache)
        acm = cache.acm
        acm.register(1)
        acm.register(2)
        acm.set_policy(2, 0, "mru")
        acm.set_priority(1, 5, 2)
        for rep in range(3):
            for b in range(8):
                touch(cache, 1, 5, b)
            for b in range(4):
                touch(cache, 2, 9, b, write=True, whole=True)
        acm.set_temppri(1, 5, 0, 3, -1)
        for b in range(8):
            touch(cache, 1, 5, b)
        assert checker.sweeps > 0

    def test_overrule_and_placeholder_consumption_instrumented(self):
        """The LRU-SP mistake path, swept after every operation: the
        overrule creates a placeholder; missing the replaced block consumes
        it exactly once and charges the manager a mistake."""
        cache = make_cache(nframes=4)
        InvariantChecker(cache)
        overrule_once(cache)
        assert cache.stats.overrules == 1
        assert cache.stats.swaps == 1
        assert cache.placeholders.created == 1
        replaced = (1, cache.nframes - 1)  # the manager's newest block went
        assert replaced in cache.placeholders
        touch(cache, 1, *replaced)  # miss on the replaced block: it fires
        assert cache.placeholders.consumed == 1
        assert replaced not in cache.placeholders
        assert cache.acm.managers[1].mistakes == 1
        table = cache.placeholders
        assert table.created == table.consumed + table.discarded + len(table)

    def test_lru_s_has_no_placeholders_but_stays_consistent(self):
        cache = make_cache(nframes=4, policy=LRU_S)
        checker = InvariantChecker(cache)
        overrule_once(cache)
        assert cache.stats.overrules == 1
        assert cache.placeholders.created == 0
        checker.check_now()

    def test_sanitized_system_run(self):
        """MachineConfig(sanitize=True) wires a checker into the kernel."""
        system = System(MachineConfig(cache_mb=0.25, sanitize=True))
        assert system.cache.sanitizer is not None
        ReadN(n=8, file_blocks=24, repeats=2, behavior=ReadNBehavior.SMART).spawn(system)
        system.run()
        assert system.cache.sanitizer.sweeps > 0

    def test_install_auto_sanitizer_is_idempotent(self):
        uninstall = install_auto_sanitizer()
        second = install_auto_sanitizer()
        try:
            cache = make_cache(nframes=4)
            assert cache.sanitizer is not None
        finally:
            second()
            uninstall()
        cache = make_cache(nframes=4)
        # conftest may have installed suite-wide sanitizing already; only
        # assert that *our* patch is gone, not that none is active.
        from repro.core.buffercache import BufferCache

        import os

        if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
            assert cache.sanitizer is None


class TestMutationsAreCaught:
    def test_skipped_lru_sp_swap_is_caught(self):
        """The acceptance mutation: eliding the swap step of LRU-SP leaves
        the global list diverging from what the protocol implies."""
        cache = make_cache(nframes=4)
        InvariantChecker(cache)
        acm = cache.acm
        acm.register(1)
        acm.set_policy(1, 0, "mru")
        for b in range(4):
            touch(cache, 1, 1, b)
        cache.global_list.swap = lambda a, b: None  # the "bug": swap elided
        with pytest.raises(InvariantViolation) as exc:
            touch(cache, 1, 1, 4)
        assert exc.value.invariant == "I4"
        assert "swap" in str(exc.value)

    def test_wrong_end_pool_insertion_is_caught(self):
        """A broken ACM that inserts new blocks at the replace-first end of
        an LRU pool — it even reports the placement, but the order is
        impossible under the protocol."""

        class BrokenACM(ACM):
            def new_block(self, block, referenced=True):
                m = self.manager(block.owner_pid)
                if m is None:
                    block.pool_prio = None
                    return
                prio = m.long_term_prio(block.file_id)
                m.pool(prio).blocks.push_lru(block)  # wrong end for LRU
                block.pool_prio = prio
                m._notify_positioned(block)

        cache = make_cache(nframes=4, acm=BrokenACM())
        InvariantChecker(cache)
        cache.acm.register(1)
        touch(cache, 1, 1, 0)
        with pytest.raises(InvariantViolation) as exc:
            touch(cache, 1, 1, 1)
        assert exc.value.invariant == "I3"

    def test_pool_order_corruption_is_caught(self):
        cache = make_cache(nframes=8)
        checker = InvariantChecker(cache)
        cache.acm.register(1)
        for b in range(4):
            touch(cache, 1, 1, b)
        pool = cache.acm.managers[1].pools[0]
        pool.blocks.move_to_lru(cache.peek(1, 3))  # recency corrupted
        with pytest.raises(InvariantViolation) as exc:
            checker.check_now("corruption")
        assert exc.value.invariant == "I3"

    def test_stale_placeholder_at_evicted_block_is_caught(self):
        """A placeholder must die with its kept block; a leak points the
        table at a non-resident frame."""
        cache = make_cache(nframes=4)
        InvariantChecker(cache)
        overrule_once(cache)
        assert len(cache.placeholders) == 1
        cache.placeholders.drop_for_kept = lambda kept: 0  # the "bug"
        with pytest.raises(InvariantViolation) as exc:
            for b in range(10, 14):  # churn until the kept block is evicted
                touch(cache, 2, 2, b)
        assert exc.value.invariant == "I5"

    def test_double_pool_membership_is_caught(self):
        cache = make_cache(nframes=8)
        checker = InvariantChecker(cache)
        acm = cache.acm
        acm.register(1)
        touch(cache, 1, 1, 0)
        block = cache.peek(1, 0)
        manager = acm.managers[1]
        manager.pool(7).blocks.push_mru(block)  # linked twice
        with pytest.raises(InvariantViolation) as exc:
            checker.check_now("double-link")
        assert exc.value.invariant == "I2"

    def test_global_list_desync_is_caught(self):
        cache = make_cache(nframes=8)
        checker = InvariantChecker(cache)
        touch(cache, 1, 1, 0)
        touch(cache, 1, 1, 1)
        cache.global_list.remove(cache.peek(1, 0))  # frame freed but mapped
        with pytest.raises(InvariantViolation) as exc:
            checker.check_now("desync")
        assert exc.value.invariant == "I1"

    def test_placeholder_accounting_identity_enforced(self):
        cache = make_cache(nframes=4)
        checker = InvariantChecker(cache)
        overrule_once(cache)
        cache.placeholders.created += 1  # phantom placeholder
        with pytest.raises(InvariantViolation) as exc:
            checker.check_now("accounting")
        assert exc.value.invariant == "I5"


class TestCacheFullPath:
    def test_all_frames_pinned_raises_and_state_survives(self):
        """Every frame pinned by an in-flight read: no victim exists, the
        access fails, and the cache structures stay fully consistent."""
        cache = make_cache(nframes=2)
        checker = InvariantChecker(cache)
        first = cache.access(1, 1, 0, 0, "disk0")
        second = cache.access(1, 1, 1, 1, "disk0")
        assert first.block.in_flight and second.block.in_flight
        with pytest.raises(CacheFullError):
            cache.access(1, 1, 2, 2, "disk0")
        checker.check_now("after CacheFullError")
        assert cache.resident == 2

    def test_recovers_once_a_read_completes(self):
        cache = make_cache(nframes=2)
        checker = InvariantChecker(cache)
        first = cache.access(1, 1, 0, 0, "disk0")
        cache.access(1, 1, 1, 1, "disk0")
        with pytest.raises(CacheFullError):
            cache.access(1, 1, 2, 2, "disk0")
        cache.loaded(first.block)
        outcome = cache.access(1, 1, 2, 2, "disk0")
        assert not outcome.hit
        assert outcome.evicted is first.block  # the only unpinned frame
        cache.loaded(outcome.block)
        checker.check_now("after recovery")

    def test_full_cache_with_managed_pools(self):
        """Consultation cannot conjure a victim when everything is pinned:
        the manager's pools hold only in-flight frames."""
        cache = make_cache(nframes=2)
        InvariantChecker(cache)
        cache.acm.register(1)
        cache.access(1, 1, 0, 0, "disk0")
        cache.access(1, 1, 1, 1, "disk0")
        with pytest.raises(CacheFullError):
            cache.access(1, 1, 2, 2, "disk0")
