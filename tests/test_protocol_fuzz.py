"""Protocol fuzz: hostile bytes and hostile messages against the daemon.

Satellite of the fault-injection PR, extended to the binary framing in
the batched-wire PR.  Two layers of attack, both seeded and
deterministic:

* **byte-level** — truncated frames, oversized length prefixes, garbage
  payloads and plain random byte blobs written straight into a TCP
  connection.  The daemon must answer with a ``BAD_REQUEST`` error reply
  (when the framing still allows one) or disconnect cleanly — never let an
  exception escape the session task and never wedge the kernel task;
* **message-level** — well-formed frames carrying randomly typed junk in
  every parameter slot.  Every request must draw exactly one reply whose
  error code is a *defined* code other than ``INTERNAL`` (``INTERNAL``
  would mean an unhandled exception crossed the service boundary; the
  daemon's ``errors`` list must stay empty).

After each battery a well-behaved client connects and completes a real
open/read/write/stats round trip, proving the shared kernel survived.
"""

from __future__ import annotations

import asyncio
import json
import random
import struct

import pytest

from repro.server import CacheClient, CacheDaemon, build_config
from repro.server.protocol import (
    ERROR_CODES,
    MAGIC,
    MAX_FRAME_BYTES,
    VERB_WIRE,
    WIRE_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_message,
)

_HEADER = struct.Struct(">I")

# Local copies of the binary header layout, so a test regression in the
# real structs cannot silently fuzz the wrong shape.
_BIN_PREFIX = struct.Struct(">2sBB")  # magic, version, flags
_BIN_REST = struct.Struct(">BqI")  # kind/verb id, request id, payload length


def run(coro):
    return asyncio.run(coro)


def frame(payload: bytes) -> bytes:
    return _HEADER.pack(len(payload)) + payload


def jframe(obj) -> bytes:
    return frame(json.dumps(obj).encode("utf-8"))


async def start_daemon(**kwargs):
    daemon = CacheDaemon(build_config(cache_mb=0.5, sanitize=True), **kwargs)
    host, port = await daemon.start_tcp()
    return daemon, host, port


async def read_replies(reader, n, timeout=5.0):
    """Read exactly ``n`` frames (the replies to ``n`` requests)."""
    out = []
    for _ in range(n):
        header = await asyncio.wait_for(reader.readexactly(_HEADER.size), timeout)
        (length,) = _HEADER.unpack(header)
        payload = await asyncio.wait_for(reader.readexactly(length), timeout)
        out.append(json.loads(payload))
    return out


async def read_until_eof(reader, timeout=5.0):
    """All frames until the server closes the connection."""
    out = []
    while True:
        header = await asyncio.wait_for(reader.read(_HEADER.size), timeout)
        if not header:
            return out
        while len(header) < _HEADER.size:
            more = await asyncio.wait_for(reader.read(_HEADER.size - len(header)), timeout)
            if not more:
                return out
            header += more
        (length,) = _HEADER.unpack(header)
        payload = await asyncio.wait_for(reader.readexactly(length), timeout)
        out.append(json.loads(payload))


async def assert_daemon_healthy(daemon):
    """The kernel task is alive and a polite client gets real service."""
    assert daemon.errors == []
    client = await CacheClient.connect_inproc(daemon, name="survivor")
    await client.open("health", size_blocks=4)
    assert await client.read("health", 0) is False
    assert await client.read("health", 0) is True
    stats = await client.stats()
    assert stats["server"]["sessions"] >= 1
    await client.aclose()


class TestByteLevelAttacks:
    def test_truncated_frame_is_a_clean_disconnect(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            # Claim 64 payload bytes, deliver 8, hang up mid-frame.
            writer.write(_HEADER.pack(64) + b"not much")
            await writer.drain()
            writer.close()
            assert await read_until_eof(reader) == []
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_oversized_length_prefix_gets_error_then_disconnect(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(_HEADER.pack(MAX_FRAME_BYTES + 1) + b"irrelevant")
            await writer.drain()
            replies = await read_until_eof(reader)
            assert len(replies) == 1
            assert replies[0]["ok"] is False
            assert replies[0]["code"] == "BAD_REQUEST"
            assert daemon.protocol_errors == 1
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_garbage_payload_gets_error_then_disconnect(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(frame(b"\xff\xfe definitely not json"))
            await writer.drain()
            replies = await read_until_eof(reader)
            assert [r["code"] for r in replies] == ["BAD_REQUEST"]
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_non_object_json_gets_error_then_disconnect(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(frame(b"[1, 2, 3]"))
            await writer.drain()
            replies = await read_until_eof(reader)
            assert [r["code"] for r in replies] == ["BAD_REQUEST"]
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_random_byte_blob_battery(self):
        """Sixty connections of pure noise; the daemon shrugs them all off."""

        async def go():
            daemon, host, port = await start_daemon()
            rng = random.Random(0xF417)
            for _ in range(60):
                reader, writer = await asyncio.open_connection(host, port)
                blob = bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 200)))
                writer.write(blob)
                await writer.drain()
                writer.close()
                for reply in await read_until_eof(reader):
                    # If the noise happened to frame-align, any reply must
                    # still be a well-formed protocol message.
                    assert reply.get("ok") is False
                    assert reply.get("code") in ERROR_CODES
            assert not daemon._kernel_task.done()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())


def junk_value(rng, depth=0):
    """A randomly typed JSON-encodable value."""
    choices = ["int", "bigint", "negint", "str", "none", "bool", "float", "list", "dict"]
    kind = rng.choice(choices if depth < 2 else choices[:7])
    if kind == "int":
        return rng.randint(0, 100)
    if kind == "bigint":
        return rng.randint(10**12, 10**18)
    if kind == "negint":
        return rng.randint(-10**6, -1)
    if kind == "str":
        return rng.choice(["", "f", "lru", "mru", "../..", "x" * 300, "\x00\x01", "7"])
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "float":
        return rng.choice([0.5, -1.5, 1e308, float(rng.randint(0, 9))])
    if kind == "list":
        return [junk_value(rng, depth + 1) for _ in range(rng.randint(0, 3))]
    return {str(i): junk_value(rng, depth + 1) for i in range(rng.randint(0, 3))}


PARAM_NAMES = (
    "path", "blockno", "size_blocks", "disk", "whole",
    "prio", "policy", "start", "end", "name", "resume", "token",
    "ops", "wire",
)

#: every verb except ``close`` (which intentionally ends the session)
FUZZ_VERBS = (
    "open", "read", "write", "readv", "writev", "stats",
    "set_priority", "get_priority",
    "set_policy", "get_policy", "set_temppri", "ping", "hello",
    "frobnicate", "", "OPEN", "read ", None, 7,
)


class TestMessageLevelFuzz:
    def test_junk_params_battery(self):
        """Well-framed junk: every request draws one non-INTERNAL reply."""

        async def go():
            daemon, host, port = await start_daemon()
            rng = random.Random(0xACDC)
            for _ in range(20):
                reader, writer = await asyncio.open_connection(host, port)
                nreq = rng.randint(5, 15)
                for req_id in range(1, nreq + 1):
                    msg = {"id": req_id, "verb": rng.choice(FUZZ_VERBS)}
                    for name in rng.sample(PARAM_NAMES, rng.randint(0, 5)):
                        msg[name] = junk_value(rng)
                    writer.write(jframe(msg))
                await writer.drain()
                replies = await read_replies(reader, nreq)
                # Session-level verbs are answered inline, kernel verbs via
                # the queue, so order interleaves — but every id must answer.
                assert sorted(r["id"] for r in replies) == list(range(1, nreq + 1))
                for reply in replies:
                    if reply["ok"]:
                        continue
                    assert reply["code"] in ERROR_CODES
                    assert reply["code"] != "INTERNAL", reply
                writer.close()
            assert daemon.errors == []
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_missing_id_and_missing_verb(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(jframe({"verb": "read", "path": "f"}))  # no id
            writer.write(jframe({"id": 2}))  # no verb
            writer.write(jframe({"id": 3, "verb": "ping"}))  # still alive?
            await writer.drain()
            replies = await read_replies(reader, 3)
            by_id = {r["id"]: r for r in replies}
            assert by_id[None]["ok"] is False  # the id-less read still errors
            assert by_id[2]["code"] == "BAD_REQUEST"
            assert by_id[3]["ok"] is True and by_id[3]["value"]["pong"] is True
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_bogus_resume_is_refused_not_fatal(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            for req_id, (resume, token) in enumerate(
                [("x", 3), (99, None), (99, "tok-99-1"), (None, [1]), (2**40, {})], start=1
            ):
                writer.write(
                    jframe({"id": req_id, "verb": "hello", "resume": resume, "token": token})
                )
            writer.write(jframe({"id": 9, "verb": "ping"}))
            await writer.drain()
            replies = await read_replies(reader, 6)
            for reply in replies[:5]:
                assert reply["ok"] is False
                assert reply["code"] == "BAD_REQUEST"
            assert replies[5]["ok"] is True
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

# -- binary framing attacks ------------------------------------------------


def bframe(payload=b"", *, version=WIRE_VERSION, flags=0, kind=None, req_id=1, length=None):
    """A raw binary frame with every header field overridable."""
    if kind is None:
        kind = VERB_WIRE["read"][0]
    if length is None:
        length = len(payload)
    return (
        _BIN_PREFIX.pack(MAGIC, version, flags)
        + _BIN_REST.pack(kind, req_id, length)
        + payload
    )


def packed_read(path=b"f", blockno=0):
    """The packed payload of a ``read`` request."""
    return struct.pack(">H", len(path)) + path + struct.pack(">Q", blockno)


async def read_frames_any(reader, n, timeout=5.0):
    """Read ``n`` frames of either framing via the real decoder."""
    decoder = FrameDecoder()
    out = []
    while len(out) < n:
        chunk = await asyncio.wait_for(reader.read(4096), timeout)
        if not chunk:
            raise AssertionError(f"eof after {len(out)}/{n} frames")
        out.extend(decoder.feed(chunk))
    return out[:n]


class TestBinaryByteLevelAttacks:
    async def _expect_rejection(self, hostile: bytes, replies: int = 1):
        """One hostile binary frame → typed error reply, clean disconnect,
        healthy daemon afterwards."""
        daemon, host, port = await start_daemon()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(hostile)
        await writer.drain()
        got = await read_until_eof(reader)
        assert len(got) == replies, got
        for reply in got:
            assert reply["ok"] is False
            assert reply["code"] == "BAD_REQUEST"
        if replies:
            assert daemon.protocol_errors >= 1
        writer.close()
        await assert_daemon_healthy(daemon)
        await daemon.aclose()

    def test_unknown_version_rejected(self):
        run(self._expect_rejection(bframe(packed_read(), version=9)))

    def test_unknown_flag_bits_rejected(self):
        run(self._expect_rejection(bframe(packed_read(), flags=0x80)))

    def test_unknown_verb_id_rejected(self):
        run(self._expect_rejection(bframe(packed_read(), kind=213)))

    def test_oversized_binary_length_rejected(self):
        run(self._expect_rejection(bframe(length=MAX_FRAME_BYTES + 1)))

    def test_trailing_payload_bytes_rejected(self):
        run(self._expect_rejection(bframe(packed_read() + b"stowaway")))

    def test_truncated_binary_frame_is_a_clean_disconnect(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            # Claim 64 payload bytes, deliver 8, hang up mid-frame.
            writer.write(bframe(b"not much", length=64))
            await writer.drain()
            writer.close()
            assert await read_until_eof(reader) == []
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_mid_batch_garbage_rejected(self):
        # A readv frame whose op records dissolve into noise after op #1.
        payload = (
            struct.pack(">I", 3)  # three ops promised
            + packed_read(b"f", 1)  # op 1 is fine
            + b"\xde\xad\xbe\xef\xff"  # then the wheels come off
        )
        run(
            self._expect_rejection(
                bframe(payload, kind=VERB_WIRE["readv"][0])
            )
        )

    def test_zero_and_oversized_batch_counts_rejected(self):
        for count in (0, 2**31):
            run(
                self._expect_rejection(
                    bframe(struct.pack(">I", count), kind=VERB_WIRE["readv"][0])
                )
            )

    def test_binary_request_served_without_negotiation(self):
        """Inbound framing is auto-detected per frame: a binary request on
        a fresh connection is answered (on the still-JSON outbound)."""

        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_message({"id": 1, "verb": "ping"}, "binary"))
            await writer.drain()
            (reply,) = await read_replies(reader, 1)  # reply is JSON-framed
            assert reply["ok"] is True and reply["value"]["pong"] is True
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_magic_prefixed_blob_battery(self):
        """Sixty connections opening with MAGIC then noise: every reply is
        a typed error, never INTERNAL, and the daemon survives them all."""

        async def go():
            daemon, host, port = await start_daemon()
            rng = random.Random(0xB14A)
            for _ in range(60):
                reader, writer = await asyncio.open_connection(host, port)
                blob = MAGIC + bytes(
                    rng.getrandbits(8) for _ in range(rng.randint(0, 200))
                )
                writer.write(blob)
                await writer.drain()
                writer.close()
                for reply in await read_until_eof(reader):
                    assert reply.get("ok") is False
                    assert reply.get("code") in ERROR_CODES
                    assert reply.get("code") != "INTERNAL"
            assert not daemon._kernel_task.done()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())


class TestBinaryDecoderFuzz:
    """The codec in isolation: hostile frames raise ProtocolError, never
    anything else, and never hang."""

    HOSTILE = [
        bframe(packed_read(), version=0),
        bframe(packed_read(), flags=0x40),
        bframe(packed_read(), kind=0),  # verb id 0 is unassigned
        bframe(b"", kind=9, flags=0x01),  # reply kind 9 does not exist
        bframe(b"\x07", kind=1, flags=0x01),  # hit byte must be 0 or 1
        bframe(b"\xff" + struct.pack(">I", 1) + b"x", flags=0x01 | 0x02),  # error code index 255
        bframe(packed_read()[:-3]),  # payload shorter than the packed form
        bframe(struct.pack(">H", 500) + b"short", kind=VERB_WIRE["read"][0]),  # string overruns payload
        bframe(b"{not json", flags=0x04),  # FLAG_JSON payload that isn't
        bframe(b'"a list no"', flags=0x04),  # FLAG_JSON payload, wrong type
    ]

    def test_hostile_corpus_raises_protocol_error(self):
        for hostile in self.HOSTILE:
            with pytest.raises(ProtocolError):
                FrameDecoder().feed(hostile)

    def test_seeded_random_payload_battery_is_bounded(self):
        """Random payloads under a valid header: decode, reject or wait
        for more bytes — but always return, and never raise anything but
        ProtocolError."""
        rng = random.Random(0xFACE)
        outcomes = {"decoded": 0, "rejected": 0, "partial": 0}
        for case in range(400):
            if case % 40 == 0:  # salt the noise with well-formed frames
                hostile = encode_message(
                    {"id": case, "verb": "read", "path": "f", "blockno": case},
                    "binary",
                )
            else:
                payload = bytes(
                    rng.getrandbits(8) for _ in range(rng.randint(0, 60))
                )
                hostile = bframe(
                    payload,
                    flags=rng.choice([0, 0x01, 0x02, 0x03, 0x04, 0x05, 0x08]),
                    kind=rng.randint(0, 20),
                    req_id=rng.randint(0, 2**40),
                    length=rng.randint(0, 80),
                )
            decoder = FrameDecoder()
            try:
                frames = decoder.feed(hostile)
            except ProtocolError:
                outcomes["rejected"] += 1
                continue
            if frames:
                outcomes["decoded"] += 1
            else:
                outcomes["partial"] += 1
                assert decoder.pending_bytes > 0
        # The battery genuinely exercised all three outcomes.
        assert all(outcomes.values()), outcomes


class TestNegotiationFuzz:
    JUNK_OFFERS = [
        0,
        1.5,
        True,
        "binary",  # a bare string is not an offer list
        {"wire": "binary"},
        ["BINARY"],
        ["json"],  # json is the floor, not an upgrade
        [None, 42, [], {}],
        [["binary"]],
        "x" * 10_000,
    ]

    def test_junk_wire_offers_never_negotiate_or_kill_the_session(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            for req_id, junk in enumerate(self.JUNK_OFFERS, start=1):
                writer.write(jframe({"id": req_id, "verb": "hello", "wire": junk}))
            await writer.drain()
            replies = await read_replies(reader, len(self.JUNK_OFFERS))
            for reply in replies:
                assert reply["ok"] is True
                assert reply["value"]["wire"] == "json"  # never upgraded
            # The session is intact and still on the JSON framing.
            writer.write(jframe({"id": 99, "verb": "ping"}))
            await writer.drain()
            (pong,) = await read_replies(reader, 1)
            assert pong["value"]["pong"] is True
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_offer_with_junk_alongside_binary_still_negotiates(self):
        async def go():
            daemon, host, port = await start_daemon()
            reader, writer = await asyncio.open_connection(host, port)
            offer = [42, "BINARY", None, "binary", "json"]
            writer.write(jframe({"id": 1, "verb": "hello", "wire": offer}))
            await writer.drain()
            (hello,) = await read_frames_any(reader, 1)
            assert hello["value"]["wire"] == "binary"
            # Replies now arrive binary-framed; requests of either framing
            # are still accepted (inbound always auto-detects).
            writer.write(jframe({"id": 2, "verb": "ping"}))
            writer.write(encode_message({"id": 3, "verb": "ping"}, "binary"))
            await writer.drain()
            pongs = await read_frames_any(reader, 2)
            assert [p["value"]["pong"] for p in pongs] == [True, True]
            writer.close()
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())

    def test_handshake_fuzz_battery(self):
        """Seeded random hellos — junk names, junk offers, junk resumes —
        answered one for one, never INTERNAL, kernel always survives."""

        async def go():
            daemon, host, port = await start_daemon()
            rng = random.Random(0x4E60)
            for _ in range(25):
                reader, writer = await asyncio.open_connection(host, port)
                nreq = rng.randint(2, 8)
                for req_id in range(1, nreq + 1):
                    msg = {"id": req_id, "verb": "hello"}
                    for field in ("name", "wire", "resume", "token"):
                        if rng.random() < 0.6:
                            msg[field] = junk_value(rng)
                    writer.write(jframe(msg))
                await writer.drain()
                replies = await read_frames_any(reader, nreq)
                assert sorted(r["id"] for r in replies) == list(range(1, nreq + 1))
                for reply in replies:
                    if not reply["ok"]:
                        assert reply["code"] in ERROR_CODES
                        assert reply["code"] != "INTERNAL", reply
                writer.close()
            assert daemon.errors == []
            await assert_daemon_healthy(daemon)
            await daemon.aclose()

        run(go())


class TestMixedHostility:
    @pytest.mark.slow
    def test_long_mixed_hostility_battery(self):
        """Interleave byte noise, junk messages and honest traffic at scale."""

        async def go():
            daemon, host, port = await start_daemon()
            rng = random.Random(0xBEEF)
            for round_no in range(40):
                reader, writer = await asyncio.open_connection(host, port)
                if rng.random() < 0.4:
                    writer.write(bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 80))))
                    await writer.drain()
                    writer.close()
                    await read_until_eof(reader)
                else:
                    nreq = rng.randint(3, 10)
                    for req_id in range(1, nreq + 1):
                        msg = {"id": req_id, "verb": rng.choice(FUZZ_VERBS)}
                        for name in rng.sample(PARAM_NAMES, rng.randint(0, 4)):
                            msg[name] = junk_value(rng)
                        writer.write(jframe(msg))
                    await writer.drain()
                    replies = await read_replies(reader, nreq)
                    for reply in replies:
                        assert reply["ok"] or reply["code"] != "INTERNAL", reply
                    writer.close()
                if round_no % 10 == 9:
                    # Honest traffic keeps working mid-battery.
                    client = await CacheClient.connect_inproc(daemon, name="honest")
                    await client.open("steady", size_blocks=2)
                    await client.write("steady", 0, whole=True)
                    await client.aclose()
            assert daemon.errors == []
            await assert_daemon_healthy(daemon)
            summary = await daemon.aclose()
            assert summary["flushed_blocks"] >= 1

        run(go())
