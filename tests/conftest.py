"""Shared test fixtures and helpers."""

from __future__ import annotations

import os

import pytest

from repro.core.acm import ACM, ResourceLimits
from repro.core.allocation import GLOBAL_LRU, LRU_S, LRU_SP, ALLOC_LRU
from repro.core.buffercache import BufferCache


@pytest.fixture(scope="session", autouse=True)
def _sanitize_suite():
    """Under ``REPRO_SANITIZE=1`` every BufferCache any test builds gets an
    InvariantChecker attached, so the whole suite doubles as a protocol
    conformance run (see docs/invariants.md)."""
    if os.environ.get("REPRO_SANITIZE", "") in ("", "0"):
        yield
        return
    from repro.check.invariants import install_auto_sanitizer

    uninstall = install_auto_sanitizer()
    yield
    uninstall()


def make_cache(nframes=8, policy=LRU_SP, acm=None, **kwargs):
    """A small BufferCache for unit tests."""
    return BufferCache(nframes, acm=acm, policy=policy, **kwargs)


def touch(cache, pid, file_id, blockno, write=False, whole=False):
    """One access with throwaway disk placement (unit tests don't do I/O)."""
    lba = file_id * 100000 + blockno
    outcome = cache.access(pid, file_id, blockno, lba, "disk0", write=write, whole=whole)
    if outcome.read_needed:
        cache.loaded(outcome.block)
    return outcome


@pytest.fixture
def cache():
    return make_cache()


@pytest.fixture
def acm():
    return ACM(limits=ResourceLimits())


# Re-exported so tests can `from conftest import ...` policies uniformly.
POLICIES = (GLOBAL_LRU, ALLOC_LRU, LRU_S, LRU_SP)
