"""The standalone eviction-policy zoo."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.opt import lru_misses, mru_misses, opt_misses
from repro.policies import (
    BeladyCache,
    ClockCache,
    FIFOCache,
    LRUCache,
    LRUKCache,
    MRUCache,
    POLICY_FACTORIES,
    RandomCache,
    SLRUCache,
    TwoQCache,
    compare_policies,
    make_policy,
    simulate,
)

CYCLIC = [i % 10 for i in range(80)]
SCAN_THEN_HOT = list(range(50)) + [0, 1, 2, 3] * 25
ZIPFY = [((i * i) % 23) % 7 for i in range(300)]

traces = st.lists(st.integers(0, 25), max_size=250)
capacities = st.integers(1, 15)


class TestBasics:
    @pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
    def test_capacity_respected(self, name):
        policy = make_policy(name, 5)
        for key in range(100):
            policy.access(key % 17)
            assert len(policy) <= 5

    @pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
    def test_hit_after_insert(self, name):
        policy = make_policy(name, 4)
        assert policy.access("a") is False
        assert policy.access("a") is True
        assert policy.hits == 1 and policy.misses == 1

    @pytest.mark.parametrize("name", sorted(POLICY_FACTORIES))
    def test_counters_consistent(self, name):
        policy = make_policy(name, 3)
        for key in ZIPFY:
            policy.access(key)
        assert policy.accesses == len(ZIPFY)
        assert policy.hits + policy.misses == policy.accesses
        assert 0.0 <= policy.hit_ratio <= 1.0

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError):
            make_policy("lirs", 10)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestSemantics:
    def test_lru_matches_reference(self):
        policy = LRUCache(4)
        run = simulate(policy, ZIPFY)
        assert run.misses == lru_misses(ZIPFY, 4)

    def test_mru_matches_reference(self):
        policy = MRUCache(4)
        run = simulate(policy, CYCLIC)
        assert run.misses == mru_misses(CYCLIC, 4)

    def test_fifo_ignores_rejuvenation(self):
        # a is referenced again but FIFO still evicts it first.
        policy = FIFOCache(2)
        for key in ["a", "b", "a", "c"]:
            policy.access(key)
        assert "a" not in policy
        assert "b" in policy and "c" in policy

    def test_clock_gives_second_chance(self):
        policy = ClockCache(3)
        for key in ("a", "b", "c", "d"):  # d's miss sweeps: evicts a,
            policy.access(key)            # clears b and c's bits
        policy.access("b")                # sets b's reference bit again
        policy.access("e")                # hand clears b, evicts c
        assert "b" in policy              # the re-reference saved b
        assert "c" not in policy

    def test_random_deterministic_given_seed(self):
        def run(seed):
            policy = RandomCache(4, seed=seed)
            return simulate(policy, ZIPFY).misses

        assert run(7) == run(7)

    def test_lruk_evicts_single_touch_scans_first(self):
        policy = LRUKCache(4, k=2)
        for key in ["h1", "h1", "h2", "h2"]:  # two blocks with full history
            policy.access(key)
        policy.access("scan1")                # single touch
        policy.access("scan2")                # evicts the other single-touch
        assert "h1" in policy and "h2" in policy

    def test_lruk_validation(self):
        with pytest.raises(ValueError):
            LRUKCache(4, k=0)

    def test_twoq_protects_rereferenced(self):
        policy = TwoQCache(4, probation_fraction=0.5)
        policy.access("hot")
        policy.access("hot")   # promoted to Am
        for key in range(10):  # scan floods A1
            policy.access(("scan", key))
        assert "hot" in policy

    def test_twoq_validation(self):
        with pytest.raises(ValueError):
            TwoQCache(4, probation_fraction=0.0)

    def test_slru_protects_rereferenced(self):
        policy = SLRUCache(4, protected_fraction=0.5)
        policy.access("hot")
        policy.access("hot")
        for key in range(10):
            policy.access(("scan", key))
        assert "hot" in policy

    def test_slru_demotion_keeps_block_resident(self):
        policy = SLRUCache(4, protected_fraction=0.5)  # protected max = 2
        for key in ["a", "a", "b", "b", "c", "c"]:     # third promotion demotes a
            policy.access(key)
        assert len(policy) == 3
        assert "a" in policy

    def test_belady_matches_reference_opt(self):
        for trace in (CYCLIC, SCAN_THEN_HOT, ZIPFY):
            policy = BeladyCache(5, trace)
            run = simulate(policy, trace)
            assert run.misses == opt_misses(trace, 5)

    def test_belady_rejects_divergent_stream(self):
        policy = BeladyCache(2, [1, 2, 3])
        policy.access(1)
        with pytest.raises(RuntimeError):
            policy.access(9)

    def test_belady_rejects_overrun(self):
        policy = BeladyCache(2, [1])
        policy.access(1)
        with pytest.raises(RuntimeError):
            policy.access(1)


class TestComparisons:
    def test_compare_policies_shape(self):
        results = compare_policies(ZIPFY, 4, POLICY_FACTORIES)
        assert set(results) == set(POLICY_FACTORIES)
        for run in results.values():
            assert run.accesses == len(ZIPFY)

    def test_mru_wins_cyclic(self):
        results = compare_policies(CYCLIC, 6, POLICY_FACTORIES)
        assert results["mru"].misses < results["lru"].misses
        assert results["mru"].misses < results["clock"].misses

    def test_scan_resistant_policies_beat_lru_on_scan_then_hot(self):
        trace = SCAN_THEN_HOT * 2
        results = compare_policies(trace, 6, POLICY_FACTORIES)
        assert results["twoq"].misses <= results["lru"].misses
        assert results["slru"].misses <= results["lru"].misses

    @settings(max_examples=30, deadline=None)
    @given(traces, capacities)
    def test_opt_lower_bounds_everything(self, trace, capacity):
        best = opt_misses(trace, capacity)
        for name in POLICY_FACTORIES:
            run = simulate(make_policy(name, capacity), trace)
            assert run.misses >= best, name

    @settings(max_examples=30, deadline=None)
    @given(traces, capacities)
    def test_all_policies_capacity_invariant(self, trace, capacity):
        for name in POLICY_FACTORIES:
            policy = make_policy(name, capacity)
            for key in trace:
                policy.access(key)
                assert len(policy) <= capacity


class TestARC:
    def make(self, capacity=8):
        from repro.policies import ARCCache

        return ARCCache(capacity)

    def test_basic_hit_miss(self):
        arc = self.make(4)
        assert arc.access("a") is False
        assert arc.access("a") is True

    def test_capacity_invariant_under_stress(self):
        arc = self.make(6)
        for i in range(3000):
            arc.access(((i * i) % 41) % 17)
            assert len(arc) <= 6

    def test_rereference_promotes_to_t2(self):
        arc = self.make(4)
        arc.access("hot")
        arc.access("hot")
        assert "hot" in arc._t2

    def test_ghost_hit_adapts_p(self):
        arc = self.make(4)
        for i in range(8):        # flood T1, pushing evictions into B1
            arc.access(("scan", i))
        assert len(arc._b1) > 0
        ghost = next(iter(arc._b1))
        p_before = arc._p
        arc.access(ghost)          # B1 hit: p grows (favour recency)
        assert arc._p > p_before
        assert ghost in arc._t2    # ghost re-reference lands in T2

    def test_scan_resistance(self):
        """ARC keeps a re-referenced working set through a one-off scan."""
        from repro.policies import ARCCache, LRUCache
        from repro.policies.base import simulate

        hot = [("h", i % 4) for i in range(40)]
        scan = [("s", i) for i in range(64)]
        trace = hot + scan + hot
        arc = simulate(ARCCache(8), trace)
        lru = simulate(LRUCache(8), trace)
        assert arc.misses <= lru.misses

    def test_arc_in_registry(self):
        from repro.policies import make_policy

        assert make_policy("arc", 8).name == "arc"

    def test_directory_bounded(self):
        arc = self.make(5)
        for i in range(5000):
            arc.access((i * 7) % 200)
        total = len(arc._t1) + len(arc._t2) + len(arc._b1) + len(arc._b2)
        assert total <= 2 * 5
