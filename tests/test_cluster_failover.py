"""Failover: crash a shard mid-workload, lose nothing that was acked.

The model is crash-stop (``CacheDaemon.abort``): the daemon dies without
draining or flushing, but its :class:`CacheService` — the machine's
kernel state and simulated disks — survives.  The health loop restarts
the daemon around the same service with the predecessor's hello tokens,
so clients redial, resume their kernel pids, and every acknowledged
write is still in the cache, still dirty, still theirs.

Also here: session resume under ``FaultyTransport`` frame drops (the
hello-token path exercised while the transport itself is lossy), and a
router-level protocol fuzz reusing the generators of
``tests/test_protocol_fuzz.py``.
"""

import asyncio
import random

import pytest

from test_protocol_fuzz import FUZZ_VERBS, PARAM_NAMES, junk_value

from repro.cluster import ClusterClient, ClusterSupervisor, HealthMonitor
from repro.faults.plan import FaultPlan
from repro.server import CacheClient
from repro.server.client import RequestTimeout, RetryPolicy, ServerError
from repro.server.protocol import ERROR_CODES


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


RETRY = RetryPolicy(timeout_s=0.5, max_retries=10, backoff_base_s=0.005, backoff_max_s=0.05)


class TestFailover:
    def test_mid_workload_crash_loses_no_acked_writes(self):
        """Acceptance criterion: kill one shard mid-workload; every write
        that was acknowledged reads back after the health loop restores
        the shard, and span + metric record the failover."""

        async def go():
            sup = ClusterSupervisor(shards=3, cache_mb=1, trace=True)
            await sup.start()
            monitor = HealthMonitor(sup, failures=2, interval_s=0.01, timeout_s=0.25)
            cc = await ClusterClient.connect(sup, name="workload", retry=RETRY)
            paths = [f"/fo{i}.dat" for i in range(12)]
            for path in paths:
                await cc.open(path, size_blocks=4)
            victim = cc.shard_of(paths[0])
            pid_before = cc.clients[victim].pid

            acked = set()

            async def writer(worker_paths):
                for path in worker_paths:
                    for blockno in range(4):
                        while True:
                            try:
                                await cc.write(path, blockno)
                            except (ConnectionError, RequestTimeout, ServerError):
                                # the crash window: re-issue until acked —
                                # whole-block writes are safe to repeat
                                await asyncio.sleep(0.01)
                                continue
                            acked.add((path, blockno))
                            break
                        # pace the workload so the kill lands mid-stream
                        await asyncio.sleep(0.002)

            async def assassin():
                await asyncio.sleep(0.01)  # let some writes land first
                await sup.kill(victim)

            monitor.start()
            await asyncio.gather(writer(paths[0::2]), writer(paths[1::2]), assassin())
            # drive probes until the victim is restored, then stop the loop
            while any(status != "up" for status in sup.statuses().values()):
                await monitor.check_once()
            await monitor.aclose()

            # every shard is back up and nothing acked was lost
            assert sup.statuses() == {sid: "up" for sid in sup.ring.shards}
            assert len(acked) == len(paths) * 4
            for path, blockno in sorted(acked):
                assert await cc.read(path, blockno) is True, (path, blockno)

            # the session resumed its kernel pid across the restart
            assert cc.clients[victim].pid == pid_before
            assert cc.clients[victim].reconnects >= 1

            # the event is recorded: metric, span, restart counter
            registry = sup.telemetry.registry
            assert registry.value("repro_cluster_failovers_total", shard=victim) >= 1.0
            assert registry.value("repro_cluster_restarts_total", shard=victim) >= 1.0
            spans = [
                r for r in sup.telemetry.tracer.records()
                if r["name"] == "cluster.failover"
            ]
            assert spans and spans[0]["attrs"]["shard"] == victim
            assert spans[0]["attrs"]["ok"] is True

            # no INTERNAL errors anywhere during the crash window
            for sid in sup.ring.shards:
                assert sup.daemon_of(sid).errors == []
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_flush_after_failover_writes_surviving_dirty_blocks(self):
        """Dirty blocks written before the crash are flushed after it —
        the write-back debt survives the daemon, as the disk would."""

        async def go():
            sup = ClusterSupervisor(shards=1, cache_mb=1)
            await sup.start()
            client = await CacheClient.connect(
                sup.endpoints("shard-0"), name="w", retry=RETRY
            )
            await client.open("/d.dat", size_blocks=4)
            for blockno in range(4):
                await client.write("/d.dat", blockno)
            await sup.kill("shard-0")
            await sup.restart("shard-0")
            assert await client.flush() == 4
            await client.aclose()
            await sup.aclose()

        run(go())


class TestResumeUnderFrameDrops:
    def test_hello_token_resume_with_lossy_transport(self):
        """The health loop restarts a killed shard whose transport drops
        frames; the client's retries ride out both the drops and the
        restart, and the session keeps its kernel pid throughout."""

        async def go():
            plan = FaultPlan(seed=0xD20, drop_frame_rate=0.05)
            sup = ClusterSupervisor(
                shards=1, cache_mb=1, shard_faults={"shard-0": plan}
            )
            await sup.start()
            monitor = HealthMonitor(sup, failures=3, interval_s=0.01, timeout_s=0.2)
            client = await CacheClient.connect(
                sup.endpoints("shard-0"), name="lossy", retry=RETRY
            )
            pid = client.pid
            await client.open("/r.dat", size_blocks=4)
            for blockno in range(4):
                await client.read("/r.dat", blockno)

            await sup.kill("shard-0")
            while sup.statuses()["shard-0"] != "up" or not await monitor.ping("shard-0"):
                await monitor.check_once()

            # reads auto-retry; the first one forces the redial + resume
            for blockno in range(4):
                assert await client.read("/r.dat", blockno) is True
            assert client.pid == pid
            assert client.reconnects >= 1

            stats = await client.stats()
            (entry,) = [s for s in stats["sessions"] if s["pid"] == pid]
            # counters carried straight through the crash: at least the
            # 4 + 4 reads (a dropped reply makes a retried read count twice)
            assert entry["accesses"] >= 8
            assert sup.daemon_of("shard-0").errors == []
            await monitor.aclose()
            await client.aclose()
            await sup.aclose()

        run(go())


class TestRouterFuzz:
    def test_junk_through_the_router_battery(self):
        """Message-level junk through ClusterClient.call: every reply is a
        defined, non-INTERNAL protocol error (or a success), and every
        shard still serves politely afterwards."""

        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="fuzz")
            rng = random.Random(0xC1C5)
            for _ in range(200):
                verb = rng.choice(FUZZ_VERBS)
                params = {}
                for name in rng.sample(PARAM_NAMES, rng.randint(0, 5)):
                    params[name] = junk_value(rng)
                try:
                    await cc.call(verb, **params)
                except ServerError as exc:
                    assert exc.code in ERROR_CODES, exc.code
                    assert exc.code != "INTERNAL", exc
            for sid in sup.ring.shards:
                daemon = sup.daemon_of(sid)
                assert daemon.errors == []
            # the cluster still does real work
            await cc.open("/after.dat", size_blocks=2)
            assert await cc.read("/after.dat", 0) is False
            assert await cc.read("/after.dat", 0) is True
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_path_junk_routes_deterministically(self):
        """Whatever junk rides along, a string path always lands on the
        ring's owner — fuzzing must not scatter a file across shards."""

        async def go():
            sup = ClusterSupervisor(shards=3, cache_mb=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="det")
            rng = random.Random(7)
            path = "/pinned.dat"
            owner = cc.shard_of(path)
            await cc.open(path, size_blocks=2)
            for _ in range(20):
                params = {"path": path, "blockno": 0}
                for name in rng.sample(("whole", "prio", "disk"), rng.randint(0, 2)):
                    params[name] = junk_value(rng)
                try:
                    await cc.call("read", **params)
                except ServerError:
                    pass
            stats = await cc.clients[owner].stats()
            (entry,) = stats["sessions"]
            assert entry["opens"] == 1
            for sid in sup.ring.shards:
                if sid == owner:
                    continue
                other = await cc.clients[sid].stats()
                (entry,) = other["sessions"]
                assert entry["accesses"] == 0
            await cc.aclose()
            await sup.aclose()

        run(go())


class TestHealthMonitorUnit:
    def test_single_miss_does_not_fail_over(self):
        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=1)
            await sup.start()
            monitor = HealthMonitor(sup, failures=3, interval_s=0.01, timeout_s=0.2)
            report = await monitor.check_once()
            assert report == {"shard-0": "up", "shard-1": "up"}
            await sup.kill("shard-1")
            assert (await monitor.check_once())["shard-1"] == "miss-1"
            assert sup.statuses()["shard-1"] == "down"
            assert monitor.failovers == 0
            assert (await monitor.check_once())["shard-1"] == "miss-2"
            assert (await monitor.check_once())["shard-1"] == "failover"
            assert monitor.failovers == 1
            assert sup.statuses()["shard-1"] == "up"
            assert (await monitor.check_once())["shard-1"] == "up"
            await sup.aclose()

        run(go())

    def test_validation(self):
        sup_holder = {}

        async def build():
            sup_holder["sup"] = ClusterSupervisor(shards=1, cache_mb=1)

        run(build())
        with pytest.raises(ValueError):
            HealthMonitor(sup_holder["sup"], failures=0)
