"""BUF: the access path and the LRU-SP replacement procedure."""

import pytest

from conftest import make_cache, touch
from repro.core.acm import ACM
from repro.core.allocation import ALLOC_LRU, GLOBAL_LRU, LRU_S, LRU_SP
from repro.core.buffercache import BufferCache, CacheFullError
from repro.core.interface import FBehaviorOp


class TestAccessPath:
    def test_first_access_misses(self, cache):
        outcome = touch(cache, 1, 1, 0)
        assert not outcome.hit
        assert outcome.read_needed

    def test_second_access_hits(self, cache):
        touch(cache, 1, 1, 0)
        assert touch(cache, 1, 1, 0).hit

    def test_capacity_never_exceeded(self):
        cache = make_cache(nframes=4)
        for b in range(20):
            touch(cache, 1, 1, b)
            assert cache.resident <= 4
        cache.check_invariants()

    def test_eviction_is_lru_for_oblivious(self):
        cache = make_cache(nframes=2)
        touch(cache, 1, 1, 0)
        touch(cache, 1, 1, 1)
        touch(cache, 1, 1, 0)       # refresh block 0
        touch(cache, 1, 1, 2)       # evicts block 1
        assert cache.peek(1, 0) is not None
        assert cache.peek(1, 1) is None

    def test_whole_block_write_needs_no_read(self, cache):
        outcome = touch(cache, 1, 1, 0, write=True, whole=True)
        assert not outcome.hit
        assert not outcome.read_needed
        assert outcome.block.dirty

    def test_partial_write_miss_needs_read(self, cache):
        outcome = touch(cache, 1, 1, 0, write=True, whole=False)
        assert outcome.read_needed
        assert outcome.block.dirty

    def test_write_hit_dirties(self, cache):
        touch(cache, 1, 1, 0)
        outcome = touch(cache, 1, 1, 0, write=True)
        assert outcome.hit
        assert outcome.block.dirty

    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache(nframes=1)
        touch(cache, 1, 1, 0, write=True, whole=True)
        outcome = touch(cache, 1, 1, 1)
        assert outcome.writeback
        assert outcome.evicted.id == (1, 0)

    def test_clean_eviction_no_writeback(self):
        cache = make_cache(nframes=1)
        touch(cache, 1, 1, 0)
        outcome = touch(cache, 1, 1, 1)
        assert outcome.evicted is not None
        assert not outcome.writeback

    def test_in_flight_access_must_wait(self, cache):
        out1 = cache.access(1, 1, 0, 0, "disk0")
        out2 = cache.access(2, 1, 0, 0, "disk0")
        assert out2.hit and out2.must_wait
        waiters = cache.loaded(out1.block)
        assert waiters == []

    def test_loaded_returns_waiters(self, cache):
        out = cache.access(1, 1, 0, 0, "disk0")
        out.block.waiters.append("proc-a")
        assert cache.loaded(out.block) == ["proc-a"]
        assert out.block.waiters == []
        assert not out.block.in_flight

    def test_stats_counters(self, cache):
        touch(cache, 1, 1, 0)
        touch(cache, 1, 1, 0)
        assert cache.stats.accesses == 2
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == 0.5

    def test_per_pid_counters(self, cache):
        touch(cache, 1, 1, 0)
        touch(cache, 2, 1, 0)
        assert cache.per_pid[1].misses == 1
        assert cache.per_pid[2].hits == 1

    def test_ownership_transfers_to_last_accessor(self, cache):
        touch(cache, 1, 1, 0)
        touch(cache, 2, 1, 0)
        assert cache.peek(1, 0).owner_pid == 2

    def test_invalid_nframes(self):
        with pytest.raises(ValueError):
            make_cache(nframes=0)

    def test_all_in_flight_raises(self):
        cache = make_cache(nframes=1)
        cache.access(1, 1, 0, 0, "disk0")  # in flight, not loaded
        with pytest.raises(CacheFullError):
            cache.access(1, 1, 1, 1, "disk0")

    def test_blocks_of_file_and_owned_by(self, cache):
        touch(cache, 1, 1, 0)
        touch(cache, 1, 1, 1)
        touch(cache, 2, 7, 0)
        assert {b.blockno for b in cache.blocks_of_file(1)} == {0, 1}
        assert len(cache.blocks_owned_by(2)) == 1

    def test_invalidate_file_drops_without_writeback(self, cache):
        touch(cache, 1, 1, 0, write=True, whole=True)
        touch(cache, 1, 1, 1)
        dropped = cache.invalidate_file(1)
        assert len(dropped) == 2
        assert cache.resident == 0
        cache.check_invariants()

    def test_dirty_blocks_listing(self, cache):
        touch(cache, 1, 1, 0, write=True, whole=True)
        touch(cache, 1, 1, 1)
        assert [b.id for b in cache.dirty_blocks()] == [(1, 0)]

    def test_mark_clean(self, cache):
        touch(cache, 1, 1, 0, write=True, whole=True)
        cache.mark_clean(cache.peek(1, 0))
        assert cache.dirty_blocks() == []


class TestPrefetch:
    def test_prefetch_installs_in_flight(self, cache):
        block, evicted = cache.prefetch(1, 1, 5, 5, "disk0")
        assert block.in_flight
        assert evicted is None
        assert cache.stats.prefetches == 1

    def test_prefetch_of_resident_is_noop(self, cache):
        touch(cache, 1, 1, 5)
        block, evicted = cache.prefetch(1, 1, 5, 5, "disk0")
        assert block is None and evicted is None

    def test_prefetch_not_counted_as_access(self, cache):
        cache.prefetch(1, 1, 5, 5, "disk0")
        assert cache.stats.accesses == 0

    def test_prefetch_evicts_when_full(self):
        cache = make_cache(nframes=1)
        touch(cache, 1, 1, 0)
        block, evicted = cache.prefetch(1, 1, 1, 1, "disk0")
        assert evicted is not None and evicted.id == (1, 0)

    def test_prefetched_block_hit_after_load(self, cache):
        block, _ = cache.prefetch(1, 1, 5, 5, "disk0")
        cache.loaded(block)
        assert touch(cache, 1, 1, 5).hit


class TestReplacementProcedure:
    """The four allocation policies share one code path; pin its behaviour."""

    def _smart_mru_cache(self, nframes=4, policy=LRU_SP):
        """A cache whose pid-1 manager uses MRU at level 0."""
        acm = ACM()
        cache = make_cache(nframes=nframes, policy=policy, acm=acm)
        acm.register(1)
        acm.set_policy(1, 0, "mru")
        return cache

    def test_global_lru_never_consults(self):
        cache = self._smart_mru_cache(policy=GLOBAL_LRU)
        for b in range(6):
            touch(cache, 1, 1, b)
        # Under the original kernel the MRU manager is ignored: LRU evicts
        # the oldest, so the newest 4 remain.
        assert {b.blockno for b in cache.blocks_of_file(1)} == {2, 3, 4, 5}
        assert cache.stats.consultations == 0

    def test_lru_sp_consults_manager(self):
        cache = self._smart_mru_cache(policy=LRU_SP)
        for b in range(6):
            touch(cache, 1, 1, b)
        # MRU keeps the prefix and thrashes the tail.
        resident = {b.blockno for b in cache.blocks_of_file(1)}
        assert {0, 1, 2}.issubset(resident)
        assert cache.stats.consultations > 0

    def test_overrule_swaps_positions(self):
        cache = self._smart_mru_cache(policy=LRU_SP)
        for b in range(4):
            touch(cache, 1, 1, b)
        before_lru = cache.global_list.lru
        touch(cache, 1, 1, 4)  # candidate = block0; manager gives block 3
        assert cache.stats.swaps == 1
        # The candidate (block 0) moved into the evictee's recent position.
        assert cache.global_list.lru is not before_lru or cache.global_list.lru.blockno != 0

    def test_overrule_creates_placeholder(self):
        cache = self._smart_mru_cache(policy=LRU_SP)
        for b in range(5):
            touch(cache, 1, 1, b)
        assert cache.placeholders.created >= 1

    def test_lru_s_swaps_but_no_placeholders(self):
        cache = self._smart_mru_cache(policy=LRU_S)
        for b in range(5):
            touch(cache, 1, 1, b)
        assert cache.stats.swaps >= 1
        assert cache.placeholders.created == 0

    def test_alloc_lru_consults_but_neither(self):
        cache = self._smart_mru_cache(policy=ALLOC_LRU)
        for b in range(5):
            touch(cache, 1, 1, b)
        assert cache.stats.consultations > 0
        assert cache.stats.swaps == 0
        assert cache.placeholders.created == 0

    def test_placeholder_fires_on_remiss(self):
        cache = self._smart_mru_cache(nframes=3, policy=LRU_SP)
        for b in range(3):
            touch(cache, 1, 1, b)
        touch(cache, 1, 1, 3)        # evicts 2 (MRU), placeholder 2 -> 0
        created = cache.placeholders.created
        assert created == 1
        touch(cache, 1, 1, 2)        # re-miss on 2: placeholder fires
        assert cache.placeholders.consumed == 1
        m = cache.acm.managers[1]
        assert m.mistakes == 1

    def test_placeholder_dropped_when_block_reloaded_without_replacement(self):
        acm = ACM()
        cache = make_cache(nframes=10, policy=LRU_SP, acm=acm)
        acm.register(1)
        acm.set_policy(1, 0, "mru")
        for b in range(10):
            touch(cache, 1, 1, b)
        touch(cache, 1, 1, 10)      # overrule creates placeholder for 9
        assert (1, 9) in cache.placeholders
        cache.invalidate_file(1)    # plenty of room now
        touch(cache, 1, 1, 9)       # reload without needing replacement
        assert (1, 9) not in cache.placeholders

    def test_placeholder_dropped_when_kept_block_evicted(self):
        cache = self._smart_mru_cache(nframes=3, policy=LRU_SP)
        for b in range(4):
            touch(cache, 1, 1, b)   # placeholder (3 -> 0) exists
        assert len(cache.placeholders) == 1
        kept = cache.peek(1, 0)
        cache.invalidate_file(1)    # evicts the kept block
        assert len(cache.placeholders) == 0
        assert kept is not None

    def test_oblivious_process_unaffected_by_placeholders_of_others(self):
        acm = ACM()
        cache = make_cache(nframes=4, policy=LRU_SP, acm=acm)
        acm.register(1)
        acm.set_policy(1, 0, "mru")
        touch(cache, 1, 1, 0)
        touch(cache, 2, 2, 0)
        touch(cache, 2, 2, 1)
        cache.check_invariants()

    def test_check_invariants_across_policies(self):
        for policy in (GLOBAL_LRU, ALLOC_LRU, LRU_S, LRU_SP):
            cache = self._smart_mru_cache(nframes=5, policy=policy)
            for i in range(40):
                touch(cache, 1, 1, (i * 3) % 11)
                cache.check_invariants()
