"""Cross-validation: the timing kernel and the trace replayer must agree.

With read-ahead disabled (prefetching is the one mechanism that touches
the cache outside the reference stream), a single process's kernel run and
a replay of its recorded trace drive the identical BufferCache logic — so
hit/miss counts must match *exactly*.  This pins the two execution paths
to each other and has caught real bookkeeping bugs.
"""

import pytest

from repro.core.allocation import ALLOC_LRU, GLOBAL_LRU, LRU_S, LRU_SP
from repro.kernel.system import MachineConfig, System
from repro.trace import TraceRecorder, read_trace, replay, write_trace
from repro.trace.recorder import record_workload
from repro.workloads import Dinero, ExternalSort, Glimpse, LinkEditor, make_cs1
from repro.workloads.registry import make_workload

SMALL = {
    "din": dict(trace_blocks=120, passes=3, cpu_per_block=0.0),
    "cs1": dict(db_blocks=90, queries=3, cpu_per_block=0.0),
    "gli": dict(npartitions=6, partition_blocks=12, queries=3,
                partitions_per_query=3, hot_partitions=1, cpu_per_block=0.0),
    "ldk": dict(nobjects=10, total_blocks=120, output_blocks=20, cpu_per_block=0.0),
    "sort": dict(input_blocks=64, run_blocks=16, cpu_per_block=0.0),
}


def kernel_counts(kind, smart, policy, frames):
    system = System(MachineConfig(
        cache_mb=frames * 8192 / 1024 / 1024, policy=policy, readahead=False))
    make_workload(kind, smart=smart, **SMALL[kind]).spawn(system)
    result = system.run()
    proc = next(iter(result.procs.values()))
    return proc.stats.hits, proc.stats.misses


def replay_counts(kind, smart, policy, frames):
    events = record_workload(make_workload(kind, smart=smart, **SMALL[kind]))
    result = replay(events, nframes=frames, policy=policy)
    return result.hits, result.misses


@pytest.mark.parametrize("kind", sorted(SMALL))
@pytest.mark.parametrize("policy", [GLOBAL_LRU, LRU_SP], ids=["global-lru", "lru-sp"])
def test_kernel_and_replay_agree(kind, policy):
    smart = policy.consult
    frames = 48
    assert kernel_counts(kind, smart, policy, frames) == replay_counts(
        kind, smart, policy, frames
    )


@pytest.mark.parametrize("policy", [ALLOC_LRU, LRU_S], ids=["alloc-lru", "lru-s"])
def test_agreement_holds_for_partial_policies(policy):
    frames = 40
    assert kernel_counts("din", True, policy, frames) == replay_counts(
        "din", True, policy, frames
    )


def test_live_system_recording_roundtrips():
    """A System-recorded trace, serialised and parsed, replays to the same
    counts as the run that produced it."""
    recorder = TraceRecorder()
    frames = 48
    system = System(
        MachineConfig(cache_mb=frames * 8192 / 1024 / 1024, policy=LRU_SP, readahead=False),
        trace_recorder=recorder,
    )
    Dinero(smart=True, **SMALL["din"]).spawn(system)
    result = system.run()
    events = read_trace(write_trace(recorder.events))
    replayed = replay(events, nframes=frames, policy=LRU_SP)
    proc = result.proc("din")
    assert (replayed.hits, replayed.misses) == (proc.stats.hits, proc.stats.misses)


def test_live_recording_captures_multi_process_interleaving():
    recorder = TraceRecorder()
    system = System(MachineConfig(cache_mb=0.5, readahead=False), trace_recorder=recorder)
    Dinero(name="a", smart=False, trace_blocks=30, passes=1, cpu_per_block=0.001).spawn(system)
    Dinero(name="b", smart=False, trace_blocks=30, passes=1, cpu_per_block=0.001).spawn(system)
    system.run()
    pids = {ev.pid for ev in recorder.events}
    assert len(pids) == 2
    # the streams interleave rather than run back-to-back
    order = [ev.pid for ev in recorder.events]
    switches = sum(1 for a, b in zip(order, order[1:]) if a != b)
    assert switches > 2
