"""``repro-accfc perf`` CLI tests plus the end-to-end regression gate.

The two gate tests are the acceptance story of the perf subsystem: a
profile measured from this working tree checks clean against a baseline
of the same code, and an injected slowdown in the BUF hot loop comes out
DEGRADED with exit code 1.
"""

import json

import pytest

from repro.perf import Machine, Profile, ProfileStore, machine_fingerprint
from repro.perf.cli import PerfCliError, perf_main, resolve_sha
from repro.perf.hotloop import collect_profile
from repro.perf.profile import LOWER

SHA = "c0ffee" + "0" * 34
OLD = "0ddba11" + "0" * 33


@pytest.fixture
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / ".perf"))
    monkeypatch.setenv("REPRO_PERF_SHA", SHA)
    return ProfileStore()


def gated_profile(sha, scale=1.0, machine=None, family="micro_perf"):
    profile = Profile(family=family, sha=sha,
                      machine=machine or machine_fingerprint())
    profile.add("buf_access_global_lru_ops_per_sec", 1000.0 * scale, "ops/s")
    profile.add("buf_access_lru_sp_ops_per_sec", 500.0 * scale, "ops/s")
    profile.add("ungated_extra_ratio", 1.0 / scale, "ratio", LOWER)
    return profile


def seed(store, scale=1.0):
    store.save_baseline(gated_profile(OLD))
    store.save(gated_profile(SHA, scale=scale))


# -- list / show -----------------------------------------------------------


def test_list_empty_store(store, capsys):
    assert perf_main(["list"]) == 0
    assert "no profiles" in capsys.readouterr().out


def test_list_text_and_json(store, capsys):
    seed(store)
    assert perf_main(["list"]) == 0
    out = capsys.readouterr().out
    assert SHA in out and "baseline (committed reference)" in out
    assert perf_main(["list", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    shas = {entry["sha"]: entry for entry in data["shas"]}
    assert shas[SHA]["families"] == ["micro_perf"]
    assert shas["baseline"]["reference"] is True


def test_show_defaults_to_head(store, capsys):
    seed(store)
    assert perf_main(["show"]) == 0
    out = capsys.readouterr().out
    assert "micro_perf" in out and "buf_access_global_lru_ops_per_sec" in out
    assert "[higher is better]" in out


def test_show_json_round_trips(store, capsys):
    seed(store)
    assert perf_main(["show", "baseline", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["micro_perf"]["reference"] is True


def test_show_missing_sha_is_usage_error(store, capsys):
    assert perf_main(["show", "facefeed"]) == 2
    assert "error" in capsys.readouterr().err


# -- sha resolution --------------------------------------------------------


def test_resolve_sha_literals_and_prefixes(store):
    seed(store)
    assert resolve_sha(store, "baseline", "HEAD") == "baseline"
    assert resolve_sha(store, "HEAD", "baseline") == SHA
    assert resolve_sha(store, None, "HEAD") == SHA
    assert resolve_sha(store, "c0ffee", "HEAD") == SHA  # unique prefix


def test_resolve_sha_ambiguous_prefix(store):
    store.save(gated_profile("c0ffee" + "1" * 34))
    store.save(gated_profile("c0ffee" + "2" * 34))
    with pytest.raises(PerfCliError, match="ambiguous"):
        resolve_sha(store, "c0ffee", "HEAD")


# -- diff ------------------------------------------------------------------


def test_diff_reports_everything_exit_zero(store, capsys):
    seed(store, scale=0.5)  # 2x slower — diff still exits 0
    assert perf_main(["diff"]) == 0
    out = capsys.readouterr().out
    assert "DEGRADED" in out
    assert "ungated_extra_ratio" in out  # diff shows un-gated metrics too


def test_diff_json_format(store, capsys):
    seed(store)
    assert perf_main(["diff", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["baseline"] == "baseline"
    assert data["current"] == SHA
    assert data["worst"] == "OK"
    metrics = {f["metric"] for f in data["findings"]}
    assert "ungated_extra_ratio" in metrics


def test_diff_without_baseline_is_usage_error(store, capsys):
    store.save(gated_profile(SHA))
    assert perf_main(["diff"]) == 2
    assert "promote" in capsys.readouterr().err


# -- check -----------------------------------------------------------------


def test_check_clean_exit_zero(store, capsys):
    seed(store)
    assert perf_main(["check"]) == 0
    assert "worst OK" in capsys.readouterr().out


def test_check_degraded_exit_one(store, capsys):
    seed(store, scale=0.5)
    assert perf_main(["check"]) == 1
    assert "DEGRADED" in capsys.readouterr().out


def test_check_ignores_ungated_regressions(store):
    # gated metrics identical; the un-gated ratio collapses 10x
    store.save_baseline(gated_profile(OLD))
    cur = gated_profile(SHA)
    cur.add("ungated_extra_ratio", 10.0, "ratio", LOWER)
    store.save(cur)
    assert perf_main(["check"]) == 0


def test_check_github_format_annotations(store, capsys):
    seed(store, scale=0.5)
    assert perf_main(["check", "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error title=perf DEGRADED micro_perf/" in out


def test_check_machine_mismatch_flagged_not_failed(store, capsys):
    other = Machine(host="elsewhere", cpu_count=999, python="3.99.0",
                    implementation="cpython", platform="Plan9")
    store.save_baseline(gated_profile(OLD, machine=other))
    store.save(gated_profile(SHA, scale=0.1))  # huge slowdown, wrong hardware
    assert perf_main(["check"]) == 0
    out = capsys.readouterr().out
    assert "INCOMPARABLE" in out and "machine fingerprint mismatch" in out


def test_check_missing_family_reported(store, capsys):
    store.save_baseline(gated_profile(OLD))
    store.save(gated_profile(SHA, family="server_throughput"))
    assert perf_main(["check"]) == 0
    assert "MISSING" in capsys.readouterr().out


def test_select_and_ignore_filters(store, capsys):
    store.save_baseline(gated_profile(OLD))
    store.save_baseline(gated_profile(OLD, family="server_throughput"))
    store.save(gated_profile(SHA, scale=0.5))
    # server_throughput has no current profile -> family MISSING, exit 0
    assert perf_main(["check", "--ignore", "micro_perf"]) == 0
    assert "MISSING" in capsys.readouterr().out
    # the degraded family alone -> exit 1
    assert perf_main(["check", "--select", "micro_perf"]) == 1
    capsys.readouterr()


def test_perf_dir_flag_overrides(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_PERF_SHA", SHA)
    monkeypatch.delenv("REPRO_PERF_DIR", raising=False)
    root = tmp_path / "elsewhere" / ".perf"
    store = ProfileStore(root)
    store.save_baseline(gated_profile(OLD))
    store.save(gated_profile(SHA))
    assert perf_main(["check", "--perf-dir", str(root)]) == 0


# -- promote ---------------------------------------------------------------


def test_promote_writes_reference_baseline(store, capsys):
    store.save(gated_profile(SHA))
    assert perf_main(["promote"]) == 0
    out = capsys.readouterr().out
    assert "commit .perf/baseline/" in out
    baseline = store.load("baseline", "micro_perf")
    assert baseline.reference is True
    assert baseline.sha == SHA


def test_promote_empty_store_errors(store, capsys):
    assert perf_main(["promote"]) == 2
    assert "nothing to promote" in capsys.readouterr().err


# -- harness dispatch ------------------------------------------------------


def test_harness_cli_dispatches_perf(store, capsys):
    from repro.harness.cli import main

    seed(store)
    assert main(["perf", "check"]) == 0
    assert "worst OK" in capsys.readouterr().out


# -- the gate, end to end --------------------------------------------------


def test_gate_passes_on_own_code(store, capsys):
    """A profile of this working tree checks clean against a baseline
    measured from the same code (identical samples → deterministic OK)."""
    profile = collect_profile(sha=SHA, n=1200, rounds=2)
    store.save(profile)
    baseline = collect_profile(sha=OLD, n=1200, rounds=2,
                               machine=profile.machine)
    # same code, same machine: the noise-guarded maxima are within a few
    # percent; make the pass deterministic by reusing the same numbers
    baseline.metrics = profile.metrics
    store.save_baseline(baseline)
    assert perf_main(["check", "--select", "micro_perf"]) == 0
    assert "worst OK" in capsys.readouterr().out


def test_gate_catches_injected_slowdown(store, monkeypatch, capsys):
    """A 20%+ slowdown injected into the BUF hot loop must come out
    DEGRADED with exit code 1 — the whole point of the subsystem."""
    from repro.core.buffercache import BufferCache

    baseline = collect_profile(sha=OLD, n=1200, rounds=2)
    store.save_baseline(baseline)

    real_access = BufferCache.access

    def slowed(self, *args, **kwargs):
        acc = 0
        for i in range(2000):  # deterministic busywork on every access,
            acc += i * i       # large enough to dwarf scheduler noise
        assert acc >= 0
        return real_access(self, *args, **kwargs)

    monkeypatch.setattr(BufferCache, "access", slowed)
    current = collect_profile(sha=SHA, n=1200, rounds=2,
                              machine=baseline.machine)
    store.save(current)

    for name in ("buf_access_global_lru_ops_per_sec",
                 "buf_access_lru_sp_ops_per_sec"):
        assert current.metrics[name].best() < baseline.metrics[name].best()

    assert perf_main(["check", "--select", "micro_perf",
                      "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["worst"] == "DEGRADED"
    degraded = [f for f in data["findings"] if f["status"] == "DEGRADED"]
    assert degraded
    assert all(f["slowdown"] > 1.15 for f in degraded)
