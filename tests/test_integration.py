"""Integration: the paper's headline effects on scaled-down configurations.

These run the real kernel + workloads end-to-end, but with smaller caches
and datasets than the benchmarks, so the whole file stays fast.
"""

import pytest

from repro.core.allocation import ALLOC_LRU, GLOBAL_LRU, LRU_S, LRU_SP
from repro.core.revocation import RevocationPolicy
from repro.harness.runner import app, run_mix, run_single
from repro.kernel.system import MachineConfig, System
from repro.workloads import Dinero, ReadN
from repro.workloads.readn import ReadNBehavior


def din_result(policy, smart, cache_mb=1.0, trace_blocks=200, passes=4):
    return run_single(
        "din",
        cache_mb=cache_mb,
        policy=policy,
        smart=smart,
        trace_blocks=trace_blocks,
        passes=passes,
        cpu_per_block=0.002,
    )


class TestSingleAppEffects:
    def test_mru_beats_lru_on_cyclic_scan(self):
        orig = din_result(GLOBAL_LRU, smart=False)
        sp = din_result(LRU_SP, smart=True)
        # MRU ideal here: 200 compulsory + 3x(200-128+1) = 419 of 800
        assert sp.proc("din").block_ios < 0.6 * orig.proc("din").block_ios

    def test_smart_never_worse_when_fits(self):
        # Cache larger than the trace: both kernels see compulsory misses.
        orig = din_result(GLOBAL_LRU, smart=False, cache_mb=2.0)
        sp = din_result(LRU_SP, smart=True, cache_mb=2.0)
        assert sp.proc("din").block_ios == orig.proc("din").block_ios

    def test_smart_reduces_elapsed_time(self):
        orig = din_result(GLOBAL_LRU, smart=False)
        sp = din_result(LRU_SP, smart=True)
        assert sp.makespan <= orig.makespan

    def test_oblivious_under_lru_sp_equals_original(self):
        """Criterion 1: oblivious processes do no worse than under LRU."""
        orig = din_result(GLOBAL_LRU, smart=False)
        sp_obl = din_result(LRU_SP, smart=False)
        assert sp_obl.proc("din").block_ios == orig.proc("din").block_ios

    def test_free_behind_reduces_ldk_ios(self):
        kwargs = dict(
            nobjects=20, total_blocks=320, output_blocks=60, cpu_per_block=0.002
        )
        orig = run_single("ldk", cache_mb=1.0, policy=GLOBAL_LRU, smart=False, **kwargs)
        sp = run_single("ldk", cache_mb=1.0, policy=LRU_SP, smart=True, **kwargs)
        assert sp.proc("ldk").block_ios < orig.proc("ldk").block_ios

    def test_pjn_index_priority_reduces_ios(self):
        kwargs = dict(
            outer_blocks=40, index_blocks=64, data_blocks=400,
            tuples_per_block=10, cpu_per_probe=0.0005,
        )
        orig = run_single("pjn", cache_mb=0.8, policy=GLOBAL_LRU, smart=False, **kwargs)
        sp = run_single("pjn", cache_mb=0.8, policy=LRU_SP, smart=True, **kwargs)
        assert sp.proc("pjn").block_ios < orig.proc("pjn").block_ios

    def test_sort_strategy_reduces_ios(self):
        kwargs = dict(input_blocks=256, run_blocks=32, cpu_per_block=0.001)
        orig = run_single("sort", cache_mb=1.0, policy=GLOBAL_LRU, smart=False, **kwargs)
        sp = run_single("sort", cache_mb=1.0, policy=LRU_SP, smart=True, **kwargs)
        assert sp.proc("sort").block_ios < orig.proc("sort").block_ios


class TestProtection:
    def _readn(self, n, file_blocks, behavior):
        return app(
            "readn",
            name=f"read{n}",
            n=n,
            file_blocks=file_blocks,
            behavior=behavior,
            cpu_per_block=0.0005,
        )

    def test_placeholders_protect_oblivious_neighbour(self):
        """Mini Table 1: a foolish MRU process steals frames under LRU-S
        but not under LRU-SP."""
        fg = lambda: self._readn(60, 200, ReadNBehavior.OBLIVIOUS)
        bg = lambda: self._readn(40, 180, ReadNBehavior.FOOLISH)
        cache_mb = 0.9  # ~115 frames: 60 + 40 fit with slack
        unprotected = run_mix([fg(), bg()], cache_mb=cache_mb, policy=LRU_S)
        protected = run_mix([fg(), bg()], cache_mb=cache_mb, policy=LRU_SP)
        assert protected.proc("read60").block_ios < unprotected.proc("read60").block_ios

    def test_protected_near_oblivious_background(self):
        fg = lambda: self._readn(60, 200, ReadNBehavior.OBLIVIOUS)
        cache_mb = 0.9
        baseline = run_mix(
            [fg(), self._readn(40, 180, ReadNBehavior.OBLIVIOUS)],
            cache_mb=cache_mb, policy=LRU_SP,
        )
        protected = run_mix(
            [fg(), self._readn(40, 180, ReadNBehavior.FOOLISH)],
            cache_mb=cache_mb, policy=LRU_SP,
        )
        base = baseline.proc("read60").block_ios
        assert protected.proc("read60").block_ios <= base * 1.3

    def test_placeholders_fire_under_lru_sp(self):
        fg = self._readn(60, 200, ReadNBehavior.OBLIVIOUS)
        bg = self._readn(40, 180, ReadNBehavior.FOOLISH)
        result = run_mix([fg, bg], cache_mb=0.9, policy=LRU_SP)
        assert result.placeholders_created > 0
        assert result.placeholders_used > 0

    def test_revocation_disarms_foolish_manager(self):
        fg = lambda: self._readn(60, 200, ReadNBehavior.OBLIVIOUS)
        bg = lambda: self._readn(40, 180, ReadNBehavior.FOOLISH)
        without = run_mix([fg(), bg()], cache_mb=0.9, policy=LRU_SP)
        with_rev = run_mix(
            [fg(), bg()],
            cache_mb=0.9,
            policy=LRU_SP,
            revocation=RevocationPolicy(min_decisions=16, mistake_ratio=0.3),
        )
        assert with_rev.revocations == 1
        # After revocation the foolish process becomes oblivious (LRU),
        # which is strictly better for its own pattern.
        assert with_rev.proc("read40").block_ios <= without.proc("read40").block_ios


class TestMultiProgramming:
    def test_mix_improves_under_lru_sp(self):
        """Mini Figure 5: two smart cyclic apps beat the original kernel."""
        kwargs = dict(trace_blocks=150, passes=3, cpu_per_block=0.002)
        orig = run_mix(
            [app("din", name="a", smart=False, **kwargs), app("din", name="b", smart=False, **kwargs)],
            cache_mb=1.0, policy=GLOBAL_LRU,
        )
        sp = run_mix(
            [app("din", name="a", smart=True, **kwargs), app("din", name="b", smart=True, **kwargs)],
            cache_mb=1.0, policy=LRU_SP,
        )
        assert sp.total_block_ios < orig.total_block_ios
        assert sp.makespan < orig.makespan

    def test_alloc_lru_worse_than_lru_sp(self):
        """Mini Figure 6: dropping swapping+placeholders hurts."""
        kwargs = dict(trace_blocks=150, passes=4, cpu_per_block=0.002)
        specs = lambda: [
            app("din", name="a", smart=True, **kwargs),
            app("din", name="b", smart=True, **kwargs),
        ]
        sp = run_mix(specs(), cache_mb=1.0, policy=LRU_SP)
        alloc = run_mix(specs(), cache_mb=1.0, policy=ALLOC_LRU)
        assert alloc.total_block_ios >= sp.total_block_ios

    def test_foolish_neighbour_slows_elapsed_not_ios(self):
        """Mini Table 2: contention costs time, not (many) blocks."""
        din_kwargs = dict(trace_blocks=150, passes=3, cpu_per_block=0.002)
        quiet = run_mix(
            [app("din", smart=True, **din_kwargs),
             app("readn", name="read40", n=40, file_blocks=180,
                 behavior=ReadNBehavior.OBLIVIOUS, cpu_per_block=0.0005)],
            cache_mb=1.0, policy=LRU_SP,
        )
        noisy = run_mix(
            [app("din", smart=True, **din_kwargs),
             app("readn", name="read40", n=40, file_blocks=180,
                 behavior=ReadNBehavior.FOOLISH, cpu_per_block=0.0005)],
            cache_mb=1.0, policy=LRU_SP,
        )
        assert noisy.proc("din").elapsed > quiet.proc("din").elapsed
        assert noisy.proc("din").block_ios <= quiet.proc("din").block_ios * 1.25
