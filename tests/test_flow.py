"""Tests for the flow-sensitive analyzer (F001–F005) and the pass manager.

The fixture corpus under ``tests/lint_fixtures/`` is the executable
specification: each ``fNNN_pos.py`` seeds violations marked with
``EXPECT[rule]`` comments on the offending lines, and each
``fNNN_neg.py`` is the near-miss variant that must stay silent.  The
parametrized test below asserts exact ``(rule, line)`` agreement.
"""

import ast
import json
import re
import textwrap
import time
from pathlib import Path

import pytest

from repro.check.flow.cfg import build_cfg, iter_functions
from repro.check.flow.passes import in_flow_dirs, run_flow_passes
from repro.check.lint import lint_source, lint_tree, lint_tree_result, main
from repro.check.manager import (
    FileContext,
    Finding,
    apply_baseline,
    load_baseline,
    parse_suppressions,
    write_baseline,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

_EXPECT_RE = re.compile(r"EXPECT\[(\w+)\]")


def dedent(src: str) -> str:
    return textwrap.dedent(src).lstrip("\n")


def flow_findings(src: str, relpath: str = "repro/server/mod.py"):
    tree = ast.parse(dedent(src))
    return sorted({(r, ln) for r, ln, _ in run_flow_passes(tree, relpath)})


def rules(findings):
    return [f.rule for f in findings]


# -- CFG construction ------------------------------------------------------


class TestCfg:
    def _cfg_of(self, src: str):
        tree = ast.parse(dedent(src))
        funcs = list(iter_functions(tree))
        assert funcs, "fixture must define a function"
        return build_cfg(funcs[0][0])

    def test_linear_body_is_one_block(self):
        cfg = self._cfg_of(
            """
            def f(x):
                y = x + 1
                return y
            """
        )
        reachable = cfg.reachable()
        # entry block plus the exit block
        assert len(reachable) == 2

    def test_if_makes_a_diamond(self):
        cfg = self._cfg_of(
            """
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
            """
        )
        entry = cfg.entry
        assert len(entry.succs) == 2
        joins = {b.bid for a in entry.succs for b in a.succs}
        assert len(joins) == 1  # both arms meet at the join block

    def test_while_loops_back(self):
        cfg = self._cfg_of(
            """
            def f(x):
                while x:
                    x -= 1
                return x
            """
        )
        header = cfg.entry.succs[0]
        assert any(s is header for b in header.succs for s in b.succs + [b])

    def test_dominators_of_diamond(self):
        cfg = self._cfg_of(
            """
            def f(x):
                if x:
                    y = 1
                else:
                    y = 2
                return y
            """
        )
        doms = cfg.dominators()
        entry = cfg.entry
        then_block, else_block = entry.succs
        join = then_block.succs[0]
        assert entry.bid in doms[join.bid]
        assert then_block.bid not in doms[join.bid]
        assert else_block.bid not in doms[join.bid]

    def test_iter_functions_sees_methods(self):
        tree = ast.parse(
            dedent(
                """
                class C:
                    def m(self):
                        pass

                    async def am(self):
                        pass

                def top():
                    def nested():
                        pass
                """
            )
        )
        names = {(func.name, cls) for func, cls in iter_functions(tree)}
        assert names == {("m", "C"), ("am", "C"), ("top", None), ("nested", None)}


# -- the fixture corpus ----------------------------------------------------


def _fixture_params():
    return sorted(p.name for p in FIXTURES.glob("f*.py"))


class TestFixtureCorpus:
    @pytest.mark.parametrize("name", _fixture_params())
    def test_fixture(self, name):
        path = FIXTURES / name
        src = path.read_text()
        expected = sorted(
            {
                (m.group(1), lineno)
                for lineno, line in enumerate(src.splitlines(), 1)
                for m in [_EXPECT_RE.search(line)]
                if m
            }
        )
        if name.endswith("_pos.py"):
            assert expected, f"{name}: positive fixture has no EXPECT markers"
        else:
            assert not expected, f"{name}: negative fixture must not expect findings"
        got = flow_findings(src, "repro/server/" + name)
        assert got == expected, f"{name}: expected {expected}, got {got}"

    def test_corpus_covers_every_pass(self):
        covered = {name[:4].upper() for name in _fixture_params()}
        assert covered == {"F001", "F002", "F003", "F004", "F005"}
        for rule in covered:
            names = {n for n in _fixture_params() if n.startswith(rule.lower())}
            assert any(n.endswith("_pos.py") for n in names)
            assert any(n.endswith("_neg.py") for n in names)


# -- scoping ---------------------------------------------------------------


class TestScoping:
    def test_flow_dirs(self):
        assert in_flow_dirs("repro/server/daemon.py")
        assert in_flow_dirs("repro/cluster/supervisor.py")
        assert in_flow_dirs("repro/fs/filesystem.py")
        assert not in_flow_dirs("repro/core/acm.py")
        assert not in_flow_dirs("repro/check/lint.py")

    def test_lint_source_skips_flow_outside_async_layer(self):
        src = (FIXTURES / "f002_pos.py").read_text()
        assert any(f.rule == "F002" for f in lint_source(src, "repro/server/x.py"))
        assert not any(f.rule == "F002" for f in lint_source(src, "repro/core/x.py"))


# -- suppressions ----------------------------------------------------------


class TestSuppressions:
    SRC = dedent(
        """
        import time


        class P:
            async def f(self):
                time.sleep(1)  # repro: allow(F002) warm-up runs before serving
        """
    )

    def test_trailing_suppression_silences_rule(self):
        assert lint_source(self.SRC, "repro/server/x.py") == []

    def test_standalone_comment_covers_next_line(self):
        src = dedent(
            """
            import time


            class P:
                async def f(self):
                    # repro: allow(F002) warm-up runs before serving
                    time.sleep(1)
            """
        )
        assert lint_source(src, "repro/server/x.py") == []

    def test_unrelated_rule_does_not_suppress(self):
        src = self.SRC.replace("allow(F002)", "allow(F001)")
        assert rules(lint_source(src, "repro/server/x.py")) == ["F002"]

    def test_missing_reason_is_r010(self):
        src = self.SRC.replace(
            "allow(F002) warm-up runs before serving", "allow(F002)"
        )
        found = rules(lint_source(src, "repro/server/x.py"))
        assert "R010" in found and "F002" in found

    def test_bad_rule_id_is_r010(self):
        src = self.SRC.replace("allow(F002)", "allow(whatever)")
        assert "R010" in rules(lint_source(src, "repro/server/x.py"))

    def test_docstring_mention_is_not_a_suppression(self):
        src = dedent(
            '''
            def f():
                """Docs may show ``# repro: allow(...)`` without parsing it."""
                return 1
            '''
        )
        by_line, malformed = parse_suppressions(src, "repro/core/x.py")
        assert by_line == {} and malformed == []

    def test_multi_rule_suppression(self):
        src = dedent(
            """
            import time


            class P:
                async def f(self):
                    time.sleep(1)  # repro: allow(F002|F001) fixture of both
            """
        )
        assert lint_source(src, "repro/server/x.py") == []


# -- baseline --------------------------------------------------------------


class TestBaseline:
    def _tree(self, tmp_path, body):
        pkg = tmp_path / "repro" / "server"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(body)
        return tmp_path

    BLOCKING = "import time\n\n\nclass P:\n    async def f(self):\n        time.sleep(1)\n"

    def test_baseline_absorbs_known_finding(self, tmp_path):
        root = self._tree(tmp_path, self.BLOCKING)
        findings = lint_tree(root)
        assert rules(findings) == ["F002"]
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, findings)
        result = lint_tree_result(root, baseline=baseline)
        assert result.findings == [] and result.baselined == 1

    def test_stale_entry_is_r010(self, tmp_path):
        root = self._tree(tmp_path, self.BLOCKING)
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, lint_tree(root))
        # fix the defect but keep the baseline entry
        (root / "repro" / "server" / "mod.py").write_text(
            "class P:\n    async def f(self):\n        return 1\n"
        )
        result = lint_tree_result(root, baseline=baseline)
        assert rules(result.findings) == ["R010"]
        assert "stale baseline entry" in result.findings[0].message

    def test_subtree_run_leaves_other_entries_alone(self):
        allowed = {("F001", "repro/server/protocol.py", "msg"): 1}
        kept, baselined, stale = apply_baseline(
            [], allowed, "baseline.json", analyzed={"repro/core/acm.py"}
        )
        assert kept == [] and baselined == 0 and stale == []

    def test_unreadable_baseline_is_r010(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        allowed, errors = load_baseline(bad)
        assert allowed == {} and rules(errors) == ["R010"]

    def test_checked_in_baseline_stays_small(self):
        allowed, errors = load_baseline(SRC_ROOT / "repro" / "check" / "lint-baseline.json")
        assert errors == []
        assert sum(allowed.values()) <= 5  # the issue's ceiling on accepted findings


# -- CLI: exit codes and formats -------------------------------------------


class TestCli:
    def _rogue_tree(self, tmp_path):
        pkg = tmp_path / "repro" / "server"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text(TestBaseline.BLOCKING)
        return pkg

    def test_exit_0_on_clean_tree(self):
        assert main([str(SRC_ROOT / "repro" / "server")]) == 0

    def test_exit_1_on_findings(self, tmp_path, capsys):
        pkg = self._rogue_tree(tmp_path)
        assert main([str(pkg)]) == 1
        assert "F002" in capsys.readouterr().out

    def test_exit_2_on_missing_path(self, capsys):
        assert main(["/no/such/tree"]) == 2
        assert "no such file" in capsys.readouterr().out

    def test_select_filters_rules(self, tmp_path, capsys):
        pkg = self._rogue_tree(tmp_path)
        assert main(["--select", "F001", str(pkg)]) == 0
        assert main(["--select", "F002", str(pkg)]) == 1

    def test_ignore_filters_rules(self, tmp_path, capsys):
        pkg = self._rogue_tree(tmp_path)
        assert main(["--ignore", "F002", str(pkg)]) == 0

    def test_github_format(self, tmp_path, capsys):
        pkg = self._rogue_tree(tmp_path)
        assert main(["--format", "github", str(pkg)]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out and "line=6" in out and "F002" in out

    def test_json_report(self, tmp_path, capsys):
        pkg = self._rogue_tree(tmp_path)
        report = tmp_path / "findings.json"
        assert main(["--format", "json", "--json", str(report), str(pkg)]) == 1
        payload = json.loads(report.read_text())
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "F002"
        printed = json.loads(capsys.readouterr().out)
        assert printed == payload

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        pkg = self._rogue_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", "--baseline", str(baseline), str(pkg)]) == 0
        assert main(["--baseline", str(baseline), str(pkg)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out


# -- the real tree ---------------------------------------------------------


class TestRealTree:
    def test_flow_passes_clean_after_fixes(self):
        result = lint_tree_result(SRC_ROOT)
        assert result.findings == []
        # the two accepted transport-latch findings are absorbed, not hidden
        assert result.baselined == 2

    def test_full_run_is_fast(self):
        start = time.monotonic()
        lint_tree(SRC_ROOT)
        assert time.monotonic() - start < 5.0

    def test_daemon_shutdown_is_single_flight(self):
        src = (SRC_ROOT / "repro" / "server" / "daemon.py").read_text()
        tree = ast.parse(src)
        found = [r for r, _, _ in run_flow_passes(tree, "repro/server/daemon.py")]
        assert "F001" not in found and "F004" not in found
