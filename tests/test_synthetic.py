"""Synthetic workload generators."""

import pytest

from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.core.interface import FBehaviorOp
from repro.harness.runner import run_mix, AppSpec
from repro.kernel.system import MachineConfig, System
from repro.sim.ops import BlockRead, BlockWrite, Control
from repro.workloads.synthetic import Phased, SequentialScan, WriteBurst, ZipfHotCold


def ops_of(wl):
    return list(wl.program())


def run_alone(wl, cache_mb=1.0, policy=LRU_SP):
    system = System(MachineConfig(cache_mb=cache_mb, policy=policy))
    wl.spawn(system)
    return system.run().proc(wl.name)


class TestSequentialScan:
    def test_single_pass_reads_everything_once(self):
        wl = SequentialScan(nblocks=50, passes=1, smart=False)
        reads = [op for op in ops_of(wl) if isinstance(op, BlockRead)]
        assert [op.blockno for op in reads] == list(range(50))

    def test_read_once_strategy_uses_priority_minus_one(self):
        wl = SequentialScan(nblocks=10, passes=1, smart=True)
        ctl = [op for op in ops_of(wl) if isinstance(op, Control)]
        assert ctl[0].op is FBehaviorOp.SET_PRIORITY
        assert ctl[0].args[1] == -1

    def test_cyclic_strategy_uses_mru(self):
        wl = SequentialScan(nblocks=10, passes=3, smart=True)
        ctl = [op for op in ops_of(wl) if isinstance(op, Control)]
        assert ctl[0].op is FBehaviorOp.SET_POLICY
        assert ctl[0].args == (0, "mru")

    def test_mru_beats_lru_end_to_end(self):
        smart = run_alone(SequentialScan(nblocks=200, passes=4, smart=True,
                                         cpu_per_block=0.001))
        plain = run_alone(SequentialScan(nblocks=200, passes=4, smart=False,
                                         cpu_per_block=0.001), policy=GLOBAL_LRU)
        assert smart.block_ios < plain.block_ios

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialScan(nblocks=0)
        with pytest.raises(ValueError):
            SequentialScan(passes=0)


class TestZipfHotCold:
    def test_hot_fraction_respected(self):
        wl = ZipfHotCold(accesses=2000, hot_fraction=0.8, smart=False, seed=3)
        reads = [op for op in ops_of(wl) if isinstance(op, BlockRead)]
        hot = sum(1 for op in reads if op.path == wl.hot_path)
        assert 0.75 < hot / len(reads) < 0.85

    def test_deterministic_under_seed(self):
        a = [op for op in ops_of(ZipfHotCold(seed=5)) if isinstance(op, BlockRead)]
        b = [op for op in ops_of(ZipfHotCold(seed=5)) if isinstance(op, BlockRead)]
        assert [(o.path, o.blockno) for o in a] == [(o.path, o.blockno) for o in b]

    def test_hot_priority_reduces_ios(self):
        kwargs = dict(hot_blocks=64, cold_blocks=600, accesses=4000,
                      cpu_per_block=0.0)
        smart = run_alone(ZipfHotCold(smart=True, **kwargs), cache_mb=0.8)
        plain = run_alone(ZipfHotCold(smart=False, **kwargs), cache_mb=0.8,
                          policy=GLOBAL_LRU)
        assert smart.block_ios < plain.block_ios

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfHotCold(hot_fraction=1.5)


class TestWriteBurst:
    def test_writes_then_reads_back(self):
        wl = WriteBurst(nblocks=20, smart=False)
        ops = ops_of(wl)
        writes = [op for op in ops if isinstance(op, BlockWrite)]
        reads = [op for op in ops if isinstance(op, BlockRead)]
        assert len(writes) == 20 and len(reads) == 20

    def test_no_read_back(self):
        wl = WriteBurst(nblocks=20, read_back=False, smart=False)
        assert not [op for op in ops_of(wl) if isinstance(op, BlockRead)]

    def test_runs_end_to_end(self):
        proc = run_alone(WriteBurst(nblocks=100, cpu_per_block=0.0))
        # 100 writes (flushed) and the read-back hits warm cache.
        assert proc.stats.disk_writes == 100
        assert proc.stats.hits >= 80


class TestPhased:
    def test_concatenates_phases(self):
        p1 = SequentialScan(name="ph1", nblocks=5, passes=1, smart=False)
        p2 = SequentialScan(name="ph2", nblocks=7, passes=1, smart=False)
        combined = Phased([p1, p2], name="job")
        reads = [op for op in ops_of(combined) if isinstance(op, BlockRead)]
        assert len(reads) == 12
        assert len(combined.file_specs()) == 2

    def test_smart_if_any_phase_smart(self):
        p1 = SequentialScan(name="ph1", nblocks=5, smart=False)
        p2 = SequentialScan(name="ph2", nblocks=5, smart=True)
        assert Phased([p1, p2]).smart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Phased([])

    def test_runs_end_to_end(self):
        p1 = SequentialScan(name="ph1", nblocks=30, passes=2, smart=True,
                            cpu_per_block=0.0)
        p2 = WriteBurst(name="ph2", nblocks=20, cpu_per_block=0.0)
        proc = run_alone(Phased([p1, p2], name="job"), cache_mb=0.5)
        assert proc.stats.accesses == 60 + 40
