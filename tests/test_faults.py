"""The fault-injection subsystem: plans, injector, recovery at every layer.

The tentpole of this PR.  Coverage map:

* plan/injector unit behaviour — seeded determinism, rate gating by the
  retry budget, scheduled bad sectors, JSON round-trips;
* disk model — errors/stalls/torn writes consume drive time and route to
  ``on_error``;
* syncer — failed writebacks requeue the dirty block (nothing silently
  lost), settle-time failures retry the raw request;
* kernel (System) — demand reads retry then raise a *typed*
  :class:`InjectedIOError`; whole runs under fault rates finish with the
  sanitizer clean and every surviving dirty block flushed;
* BUF/ACM boundary — misbehaving managers fall back to global LRU and are
  revoked past the tolerance; revoked pids get defined errors from every
  directive (the regression of this PR's bug-fix satellite);
* client/daemon — per-request timeouts, idempotent-only retries,
  reconnect with session resume;
* the acceptance scenario — a 4-client server run under ≥1 % disk error
  rate plus one scripted manager revocation completes, flushes all
  surviving dirty blocks, and reports the faults in ``stats``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.check.invariants import InvariantChecker
from repro.core.acm import ACM, RevokedError
from repro.core.buffercache import BufferCache
from repro.core.interface import FBehaviorOp, FBehaviorRevokedError, fbehavior
from repro.core.upcall import LRUHandler, UpcallACM
from repro.faults import (
    BlockFault,
    FaultInjector,
    FaultPlan,
    InjectedIOError,
)
from repro.kernel.system import MachineConfig, System
from repro.server import CacheClient, CacheDaemon, ServerError, build_config
from repro.server.client import RequestTimeout, RetryPolicy
from repro.sim.ops import BlockRead, BlockWrite, Control

from conftest import touch


def run(coro):
    return asyncio.run(coro)


def small_config(**kwargs):
    kwargs.setdefault("cache_mb", 0.5)
    kwargs.setdefault("sanitize", True)
    return MachineConfig(**kwargs)


# -- plan + injector units -------------------------------------------------


class TestFaultPlan:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan()
        assert not plan.wants_disk_faults
        assert not plan.wants_manager_faults
        assert not plan.wants_transport_faults
        inj = FaultInjector(plan)
        assert all(inj.disk_fault("hda", lba, False) is None for lba in range(200))
        assert all(inj.frame_fault() is None for _ in range(200))

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(disk_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(drop_frame_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(manager_fault_limit=0)

    def test_block_fault_validated(self):
        with pytest.raises(ValueError):
            BlockFault("hda", 4, kind="melt")
        with pytest.raises(ValueError):
            BlockFault("hda", 4, count=0)
        with pytest.raises(ValueError):
            BlockFault("hda", 4, kind="torn", write=False)

    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            disk_error_rate=0.02,
            torn_write_rate=0.01,
            block_faults=(BlockFault("RZ56", 100, kind="torn", count=2, write=True),),
            revoke_pids=(3,),
            drop_frame_rate=0.05,
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.as_dict())))
        assert clone == plan

    def test_from_spec_inline_and_unknown_field(self):
        plan = FaultPlan.from_spec('{"seed": 5, "disk_error_rate": 0.1}')
        assert plan.seed == 5 and plan.disk_error_rate == 0.1
        with pytest.raises(ValueError):
            FaultPlan.from_spec('{"disk_eror_rate": 0.1}')
        with pytest.raises(ValueError):
            FaultPlan.from_spec('{"seed": }')  # malformed JSON
        with pytest.raises(OSError):
            FaultPlan.from_spec("/no/such/plan.json")  # non-{ spec = a path


class TestInjector:
    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(seed=42, disk_error_rate=0.3, disk_stall_rate=0.2)

        def fates():
            inj = FaultInjector(plan)
            return [
                (f.kind if f else None)
                for f in (inj.disk_fault("hda", i, i % 2 == 0) for i in range(300))
            ]

        first = fates()
        assert first == fates()
        assert "error" in first and "stall" in first and None in first

    def test_rate_faults_respect_retry_budget(self):
        inj = FaultInjector(FaultPlan(disk_error_rate=1.0, max_disk_retries=3))
        assert inj.disk_fault("hda", 0, True, attempt=3) is not None
        assert inj.disk_fault("hda", 0, True, attempt=4) is None  # gate open

    def test_scheduled_bad_sector_never_heals(self):
        inj = FaultInjector(FaultPlan(block_faults=(BlockFault("hda", 9, count=-1),)))
        for attempt in range(1, 50):
            fault = inj.disk_fault("hda", 9, True, attempt=attempt)
            assert fault is not None and fault.kind == "error"
        assert inj.disk_fault("hda", 10, True) is None  # only that sector

    def test_scheduled_fault_count_decrements(self):
        inj = FaultInjector(FaultPlan(block_faults=(BlockFault("hda", 5, count=2),)))
        assert inj.disk_fault("hda", 5, False) is not None
        assert inj.disk_fault("hda", 5, False) is not None
        assert inj.disk_fault("hda", 5, False) is None

    def test_torn_on_read_degrades_to_error(self):
        inj = FaultInjector(FaultPlan(block_faults=(BlockFault("hda", 5, kind="torn", count=-1),)))
        fault = inj.disk_fault("hda", 5, False)
        assert fault.kind == "error"
        assert inj.stats.disk_errors == 1 and inj.stats.torn_writes == 0

    def test_forced_revocation_fires_once_at_nth_consult(self):
        inj = FaultInjector(FaultPlan(revoke_pids=(4,), revoke_after_consults=3))
        assert [inj.manager_fault(4) for _ in range(5)] == [None, None, "forced", None, None]
        assert inj.manager_fault(5) is None
        assert inj.stats.manager_forced_revocations == 1

    def test_snapshot_counts_everything(self):
        inj = FaultInjector(FaultPlan(disk_error_rate=1.0))
        inj.disk_fault("hda", 0, True)
        inj.note_disk_retry()
        inj.note_writeback_requeue()
        snap = inj.snapshot()
        assert snap["enabled"] is True
        assert snap["disk_errors"] == 1
        assert snap["disk_retries"] == 1
        assert snap["writeback_requeues"] == 1
        assert snap["injected_total"] == 1


# -- typed errors + lint contract -----------------------------------------


class TestTypedErrors:
    def test_injected_io_error_carries_context(self):
        exc = InjectedIOError("RZ56", 812, write=True, kind="torn")
        assert (exc.disk, exc.lba, exc.write, exc.kind) == ("RZ56", 812, True, "torn")
        assert not isinstance(exc, OSError)  # simulated, not a host error


# -- the simulated kernel under faults ------------------------------------


class TestSystemUnderFaults:
    def test_demand_read_retries_then_succeeds(self):
        # Two scheduled failures on the data block, then it heals.
        config = small_config(
            faults=FaultPlan(block_faults=(BlockFault("RZ56", 0, kind="error", count=2, write=False),))
        )
        system = System(config)
        system.add_file("data", nblocks=4, disk="RZ56")

        def prog():
            yield BlockRead("data", 0)

        system.spawn("p", prog())
        result = system.run()
        assert result.faults["disk_errors"] == 2
        assert result.faults["disk_retries"] == 2
        assert result.proc("p").stats.misses == 1

    def test_persistently_bad_sector_raises_typed_error(self):
        config = small_config(
            faults=FaultPlan(block_faults=(BlockFault("RZ56", 0, kind="error", count=-1, write=False),))
        )
        system = System(config)
        system.add_file("data", nblocks=4, disk="RZ56")

        def prog():
            yield BlockRead("data", 0)

        system.spawn("p", prog())
        with pytest.raises(InjectedIOError) as info:
            system.run()
        assert info.value.disk == "RZ56" and info.value.write is False

    def test_failed_writeback_requeues_dirty_block(self):
        # The flush write fails twice; the block must still reach disk by
        # the end of the run rather than being silently dropped.
        system = System(small_config(sync_interval_s=0.5, sync_age_s=0.0))
        system.add_file("out", nblocks=4, disk="RZ56")
        lba = system.fs.lookup("out").lba_of(0)
        config = small_config(
            sync_interval_s=0.5,
            sync_age_s=0.0,
            faults=FaultPlan(
                block_faults=(BlockFault("RZ56", lba, kind="error", count=2, write=True),)
            ),
        )
        system = System(config)
        system.add_file("out", nblocks=4, disk="RZ56")

        def prog():
            yield BlockWrite("out", 0)

        system.spawn("p", prog())
        result = system.run()
        assert result.faults["disk_errors"] + result.faults["torn_writes"] == 2
        assert result.faults["writeback_requeues"] + result.faults["disk_retries"] >= 1
        assert result.faults["lost_writes"] == 0
        assert len(system.cache.dirty_blocks()) == 0

    def test_chaos_run_completes_with_sanitizer_clean(self):
        """Rates on every disk axis; the run ends, I1–I6 hold throughout."""
        config = small_config(
            faults=FaultPlan(
                seed=7,
                disk_error_rate=0.02,
                disk_stall_rate=0.01,
                torn_write_rate=0.01,
            )
        )
        system = System(config)
        system.add_file("data", nblocks=48)
        system.add_file("scratch", nblocks=48)

        def reader(name):
            def prog():
                yield Control(FBehaviorOp.SET_PRIORITY, ("data", 1))
                for i in range(120):
                    yield BlockRead("data", (i * 7) % 48)
                    yield BlockWrite("scratch", i % 48)
            return prog

        system.spawn("a", reader("a")())
        system.spawn("b", reader("b")())
        result = system.run()
        assert result.faults is not None
        assert result.faults["injected_total"] > 0
        assert result.faults["lost_writes"] == 0
        assert len(system.cache.dirty_blocks()) == 0
        checker = system.cache.sanitizer
        assert checker is not None and checker.sweeps > 0
        checker.check_now("final")
        # drive-level accounting saw the consumed attempts
        assert sum(d["faults"] for d in result.disk_stats.values()) > 0

    def test_faultless_run_reports_no_fault_section(self):
        system = System(small_config())
        system.add_file("data", nblocks=4)

        def prog():
            yield BlockRead("data", 0)

        system.spawn("p", prog())
        assert system.run().faults is None


# -- the BUF/ACM boundary under manager faults -----------------------------


def _fill(acm_cache, pid, nblocks):
    for i in range(nblocks):
        touch(acm_cache, pid, 1, i)


class TestManagerMisbehaviour:
    def _managed_cache(self, plan):
        acm = ACM()
        acm.injector = FaultInjector(plan)
        cache = BufferCache(4, acm=acm)
        if cache.sanitizer is None:
            InvariantChecker(cache)
        acm.set_priority(1, 1, 1)  # register pid 1 as a manager
        return cache, acm

    def test_fault_limit_revokes_to_global_lru(self):
        cache, acm = self._managed_cache(
            FaultPlan(manager_bad_reply_rate=1.0, manager_fault_limit=2)
        )
        _fill(cache, 1, 6)  # forces consultations past the limit
        m = acm.managers[1]
        assert m.revoked
        assert acm.revocations == 1
        assert acm.injector.stats.managers_revoked == 1
        assert acm.injector.stats.manager_bad_replies >= 2
        # Revoked manager's blocks went back to plain global LRU...
        assert all(b.pool_prio is None for b in cache.blocks_owned_by(1))
        # ... and replacement still works (candidate goes, no consult).
        _fill(cache, 1, 8)
        cache.check_invariants()

    def test_forced_revocation_at_nth_consult(self):
        cache, acm = self._managed_cache(FaultPlan(revoke_pids=(1,), revoke_after_consults=2))
        _fill(cache, 1, 7)
        assert acm.managers[1].revoked
        assert acm.injector.stats.manager_forced_revocations == 1

    def test_single_fault_under_limit_only_falls_back(self):
        cache, acm = self._managed_cache(
            FaultPlan(seed=3, manager_timeout_rate=1.0, manager_fault_limit=10**6)
        )
        _fill(cache, 1, 6)
        m = acm.managers[1]
        assert not m.revoked  # tolerated: fell back to the candidate only
        assert acm.injector.stats.manager_timeouts >= 1


class TestRevokedDirectives:
    """Satellite fix: directives for a revoked pid return a *defined* error
    instead of silently re-registering the manager."""

    def _revoked(self):
        acm = ACM()
        cache = BufferCache(4, acm=acm)
        acm.set_priority(1, 1, 2)
        acm.managers[1].revoke()
        acm.revocations += 1
        return acm, cache

    def test_register_refused(self):
        acm, _ = self._revoked()
        with pytest.raises(RevokedError):
            acm.register(1)
        assert acm.managers[1].revoked  # still revoked, not re-granted

    def test_set_and_get_directives_raise(self):
        acm, _ = self._revoked()
        with pytest.raises(RevokedError):
            acm.set_priority(1, 1, 3)
        with pytest.raises(RevokedError):
            acm.get_priority(1, 1)
        with pytest.raises(RevokedError):
            acm.set_policy(1, 0, "mru")
        with pytest.raises(RevokedError):
            acm.get_policy(1, 0)
        with pytest.raises(RevokedError):
            acm.set_temppri(1, 1, 0, 3, -1)

    def test_absent_manager_still_gets_defaults(self):
        acm, _ = self._revoked()
        assert acm.get_priority(2, 1) == 0  # never registered: default, no error
        assert acm.get_policy(2, 0).value == "lru"

    def test_fbehavior_maps_to_typed_error(self):
        acm, _ = self._revoked()
        with pytest.raises(FBehaviorRevokedError):
            fbehavior(acm, None, 1, FBehaviorOp.GET_PRIORITY, (1,))

    def test_upcall_registration_refused(self):
        acm = UpcallACM()  # an ACM with the upcall interface
        acm.set_priority(1, 1, 1)
        acm.managers[1].revoke()
        with pytest.raises(RevokedError):
            acm.register_handler(1, LRUHandler())

    def test_wire_code_is_revoked(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon, name="doomed")
            await client.open("f", size_blocks=4)
            await client.set_priority("f", 1)
            daemon.service.acm.managers[client.pid].revoke()
            with pytest.raises(ServerError) as info:
                await client.get_priority("f")
            assert info.value.code == "REVOKED"
            with pytest.raises(ServerError) as info:
                await client.set_policy(0, "mru")
            assert info.value.code == "REVOKED"
            stats = await client.stats()
            entry = next(s for s in stats["sessions"] if s["pid"] == client.pid)
            assert entry["revoked"] is True
            await client.aclose()
            await daemon.aclose()

        run(go())


# -- client resilience -----------------------------------------------------


class TestClientResilience:
    def test_timeout_raises_request_timeout(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon, name="impatient", retry=RetryPolicy(timeout_s=0.05, max_retries=0)
            )
            await client.open("f", size_blocks=2)
            daemon.pause()  # requests queue but are never applied
            with pytest.raises(RequestTimeout):
                await client.read("f", 0)
            assert client.timeouts == 1
            daemon.resume()
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_idempotent_retry_survives_paused_server(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon,
                name="patient",
                retry=RetryPolicy(timeout_s=0.1, max_retries=5, backoff_base_s=0.01),
            )
            await client.open("f", size_blocks=2)
            daemon.pause()
            asyncio.get_running_loop().call_later(0.15, daemon.resume)
            # The first send is applied when the daemon resumes, so the
            # retried duplicate sees a hit — duplicate reads are harmless,
            # which is exactly why ``read`` is on the idempotent list.
            assert await client.read("f", 0) in (False, True)
            assert client.retries >= 1
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_write_is_never_auto_retried(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon,
                name="writer",
                retry=RetryPolicy(timeout_s=0.05, max_retries=5, backoff_base_s=0.01),
            )
            await client.open("f", size_blocks=2)
            daemon.pause()
            with pytest.raises(RequestTimeout):
                await client.write("f", 0)
            assert client.retries == 0  # non-idempotent: no silent duplicate
            daemon.resume()
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_reconnect_resumes_same_kernel_pid(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(
                daemon,
                name="phoenix",
                retry=RetryPolicy(timeout_s=1.0, max_retries=3, backoff_base_s=0.01),
            )
            await client.open("f", size_blocks=4)
            await client.set_priority("f", 2)
            pid = client.pid
            # Sever the transport out from under the client.
            client._transport.close()
            await asyncio.sleep(0)
            assert await client.get_priority("f") == 2  # reconnect + resume
            assert client.pid == pid
            assert client.reconnects == 1
            stats = await client.stats()
            assert [s["pid"] for s in stats["sessions"]].count(pid) == 1
            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_resume_with_wrong_token_is_refused(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5))
            client = await CacheClient.connect_inproc(daemon, name="a")
            await client.aclose()  # session closed: pid is resumable...
            thief = await CacheClient.connect_inproc(daemon, name="thief")
            with pytest.raises(ServerError) as info:
                await thief.call("hello", resume=client.pid, token="tok-forged")
            assert info.value.code == "BAD_REQUEST"
            await thief.aclose()
            await daemon.aclose()

        run(go())


# -- the acceptance scenario -----------------------------------------------


ACCEPTANCE_PLAN = FaultPlan(
    seed=11,
    disk_error_rate=0.02,  # ≥ 1 % as the issue demands
    disk_stall_rate=0.01,
    torn_write_rate=0.01,
    drop_frame_rate=0.01,
    garble_frame_rate=0.005,
    slow_loris_rate=0.01,
    slow_loris_s=0.001,
    revoke_pids=(1,),
    revoke_after_consults=5,
)


class TestAcceptanceScenario:
    def test_four_client_run_survives_the_plan(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5, sanitize=True, faults=ACCEPTANCE_PLAN))
            retry = RetryPolicy(timeout_s=2.0, max_retries=8, backoff_base_s=0.005)
            clients = [
                await CacheClient.connect_inproc(daemon, name=f"c{i}", retry=retry)
                for i in range(1, 5)
            ]

            async def retrying(thunk):
                # The documented caller pattern for non-idempotent verbs:
                # the client never auto-retries them (a dropped *reply*
                # would double-apply), but whole-block writes and absolute
                # set_* directives are idempotent at the application level.
                for _ in range(10):
                    try:
                        return await thunk()
                    except (RequestTimeout, ConnectionError):
                        await asyncio.sleep(0.01)
                raise AssertionError("request never made it through")

            # Directives first, sequentially: the fault plan revokes pid 1
            # at its Nth consultation, and consultations only start once
            # replacement traffic flows below.
            for idx, client in enumerate(clients, start=1):
                path = f"file{idx}"
                await client.open(path, size_blocks=24)
                await retrying(lambda c=client, p=path, i=idx: c.set_priority(p, i % 3))
                if idx % 2:
                    await retrying(lambda c=client, i=idx: c.set_policy(i % 3, "mru"))

            async def workload(idx, client):
                path = f"file{idx}"
                for i in range(120):
                    if i % 3 == 0:
                        await retrying(lambda c=client, b=i % 24: c.write(path, b, whole=True))
                    else:
                        await client.read(path, (i * 5) % 24)

            await asyncio.gather(*(workload(i, c) for i, c in enumerate(clients, start=1)))

            stats = await clients[0].stats()
            faults = stats["faults"]
            assert faults["enabled"] is True
            assert faults["injected_total"] > 0
            assert faults["disk_errors"] > 0
            # The scripted revocation fired and is visible end to end.
            assert faults["manager_forced_revocations"] == 1
            assert faults["revocations"] >= 1
            assert any(s["revoked"] for s in stats["sessions"])

            for client in clients:
                await client.aclose()
            summary = await daemon.aclose()
            service = daemon.service
            # Every surviving dirty block was flushed at shutdown.
            assert len(service.cache.dirty_blocks()) == 0
            assert summary["flushed_blocks"] + service.lost_writes > 0
            # The sanitizer observed the whole run and is still clean.
            checker = service.cache.sanitizer
            assert checker is not None and checker.sweeps > 0
            checker.check_now("acceptance-final")
            assert daemon.errors == []

        run(go())

    def test_acceptance_plan_round_trips_through_cli_spec(self):
        spec = json.dumps(ACCEPTANCE_PLAN.as_dict())
        assert FaultPlan.from_spec(spec) == ACCEPTANCE_PLAN
