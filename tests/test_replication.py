"""repro.replication acceptance battery.

Three layers under test, bottom-up:

* :meth:`HashRing.replicas` — the ownership maths: r distinct shards,
  primary first, prefix-stable as r grows, balanced across 64 vnodes,
  and join-bounded (a new shard only ever *inserts itself* into a
  replica set, which is what bounds rebalancing volume).
* :class:`ReplicationManager` — write-through fan-out with quorum acks,
  leased fences over stale copies, repair-by-invalidation, the
  write-path self-heal for replicas that missed an open, and batch
  split/re-merge that survives a dark shard.
* The cluster acceptance criteria from the replication issue: a mid
  workload crash loses no acked write AND the post-failover hit ratio
  stays within 10% of pre-failover (warm failover, not a cold refetch);
  ``add_shard``/``remove_shard`` migrate at most 1.5x the ideal 1/N
  share of stored bytes and leave every path warm under the new ring.

The fault-plan helpers of :mod:`repro.faults.replicas` are covered here
too (with a stub ring: the helpers are duck-typed on purpose, so the
one-way faults -> cluster dependency rule stays intact).
"""

import asyncio

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterSupervisor,
    HashRing,
    ReplicationError,
    ReplicationManager,
    replication,
)
from repro.disk.params import BLOCK_SIZE
from repro.faults.plan import BlockFault, FaultPlan
from repro.faults.replicas import merge_plans, replica_fault_plans, replica_sids
from repro.server.client import RequestTimeout, RetryPolicy, ServerError


def run(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


#: fault-tolerant client policy: redial through crash windows (the
#: default policy deliberately does not retry; see repro.server.client)
RETRY = RetryPolicy(timeout_s=0.5, max_retries=10, backoff_base_s=0.005, backoff_max_s=0.05)

KEYS = [f"/replicated/file-{i:04d}.dat" for i in range(900)]


# ---------------------------------------------------------------------------
# ring ownership maths
# ---------------------------------------------------------------------------


class TestRingReplicas:
    def test_r_distinct_owners_primary_first(self):
        ring = HashRing([f"shard-{i}" for i in range(5)], vnodes=64)
        for key in KEYS[:200]:
            for r in (1, 2, 3, 4):
                owners = ring.replicas(key, r)
                assert len(owners) == r
                assert len(set(owners)) == r
                assert owners[0] == ring.shard_for(key)

    def test_growing_r_only_appends(self):
        """replicas(k, r) is a prefix of replicas(k, r+1): the stability
        that bounds key movement when the degree changes."""
        ring = HashRing([f"shard-{i}" for i in range(5)], vnodes=64)
        for key in KEYS[:200]:
            sets = [ring.replicas(key, r) for r in (1, 2, 3, 4)]
            for smaller, larger in zip(sets, sets[1:]):
                assert larger[: len(smaller)] == smaller

    def test_r_clamped_to_ring_size_and_validated(self):
        ring = HashRing(["shard-0", "shard-1"], vnodes=16)
        owners = ring.replicas("/any.dat", 3)
        assert sorted(owners) == ["shard-0", "shard-1"]
        with pytest.raises(ValueError):
            ring.replicas("/any.dat", 0)

    def test_membership_balanced_across_64_vnodes(self):
        """Acceptance: replica membership balanced within +-20% of the
        mean for 64 vnodes (r=2, 3 shards, 900 keys)."""
        ring = HashRing(["shard-0", "shard-1", "shard-2"], vnodes=64)
        counts = {sid: 0 for sid in ring.shards}
        for key in KEYS:
            for sid in ring.replicas(key, 2):
                counts[sid] += 1
        mean = 2 * len(KEYS) / len(ring.shards)
        for sid, count in counts.items():
            assert 0.8 * mean <= count <= 1.2 * mean, (sid, count, mean)

    def test_join_only_inserts_the_new_shard(self):
        """Adding a shard may insert itself into a replica set (evicting
        the last rank) but never reshuffles the other members — the
        property that confines migration to the joiner's span."""
        old = HashRing([f"shard-{i}" for i in range(4)], vnodes=64)
        new = HashRing([f"shard-{i}" for i in range(5)], vnodes=64)
        changed = 0
        for key in KEYS:
            old_set = old.replicas(key, 2)
            new_set = new.replicas(key, 2)
            gained = set(new_set) - set(old_set)
            assert gained <= {"shard-4"}
            survivors = [sid for sid in new_set if sid in old_set]
            assert survivors == [sid for sid in old_set if sid in new_set]
            if gained:
                changed += 1
        # the joiner picks up about 2/5 of the sets (rank-1 or rank-2
        # slots); it must not have grabbed wildly more than its share
        assert changed <= 1.5 * (2 * len(KEYS) / 5)

    def test_insertion_order_does_not_matter(self):
        a = HashRing(["shard-0", "shard-1", "shard-2"], vnodes=32)
        b = HashRing(["shard-2", "shard-0", "shard-1"], vnodes=32)
        for key in KEYS[:100]:
            assert a.replicas(key, 2) == b.replicas(key, 2)

    def test_replica_sets_helper_matches_ring(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"], vnodes=32)
        paths = KEYS[:20]
        sets = replication.replica_sets(ring, paths, 2)
        assert set(sets) == set(paths)
        for path in paths:
            assert sets[path] == ring.replicas(path, 2)


# ---------------------------------------------------------------------------
# replica-targeted fault plans (duck-typed: no cluster import in faults)
# ---------------------------------------------------------------------------


class _StubRing:
    """Any object with replicas(path, r) satisfies the faults contract."""

    def __init__(self, sets):
        self._sets = sets

    def replicas(self, path, r):
        return list(self._sets[path])[:r]


class TestReplicaFaultHelpers:
    def test_replica_sids_roles(self):
        ring = _StubRing({"/a": ["s0", "s1", "s2"]})
        assert replica_sids(ring, "/a", 3, "primary") == ["s0"]
        assert replica_sids(ring, "/a", 3, "secondaries") == ["s1", "s2"]
        assert replica_sids(ring, "/a", 3, "all") == ["s0", "s1", "s2"]
        with pytest.raises(ValueError):
            replica_sids(ring, "/a", 3, "bystanders")

    def test_merge_plans_takes_the_worse_regime(self):
        a = FaultPlan(
            seed=7,
            disk_error_rate=0.2,
            block_faults=(BlockFault("disk0", 1),),
            revoke_pids=(3,),
        )
        b = FaultPlan(
            seed=9,
            disk_error_rate=0.1,
            drop_frame_rate=0.5,
            block_faults=(BlockFault("disk0", 2),),
            revoke_pids=(3, 4),
        )
        merged = merge_plans(a, b)
        assert merged.seed == 7  # first plan's seed wins
        assert merged.disk_error_rate == 0.2
        assert merged.drop_frame_rate == 0.5
        assert merged.block_faults == (BlockFault("disk0", 1), BlockFault("disk0", 2))
        assert merged.revoke_pids == (3, 4)

    def test_replica_fault_plans_targets_roles_and_merges(self):
        ring = _StubRing({"/a": ["s0", "s1"], "/b": ["s1", "s2"]})
        plan = FaultPlan(disk_error_rate=0.5)
        assert set(replica_fault_plans(ring, ["/a", "/b"], 2, plan)) == {"s0", "s1"}
        secondaries = replica_fault_plans(ring, ["/a", "/b"], 2, plan, role="secondaries")
        assert set(secondaries) == {"s1", "s2"}
        everyone = replica_fault_plans(ring, ["/a", "/b"], 2, plan, role="all")
        assert set(everyone) == {"s0", "s1", "s2"}
        # s1 was selected via both paths: same plan merged with itself
        assert everyone["s1"] == plan
        base = {"s9": FaultPlan(drop_frame_rate=0.25)}
        stacked = replica_fault_plans(ring, "/a", 2, plan, role="all", base=base)
        assert stacked["s9"] == base["s9"]
        assert set(stacked) == {"s0", "s1", "s9"}


# ---------------------------------------------------------------------------
# the replicated service (in-process clusters)
# ---------------------------------------------------------------------------


async def _cluster(shards=3, replicas=2, cache_mb=1, **kw):
    sup = ClusterSupervisor(shards=shards, cache_mb=cache_mb, replicas=replicas, **kw)
    await sup.start()
    cc = await ClusterClient.connect(sup, name="repl-test", retry=RETRY)
    return sup, cc


class TestReplicatedService:
    def test_degree_is_a_cluster_property(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICAS", raising=False)
        assert replication.default_replicas() == 1
        monkeypatch.setenv("REPRO_REPLICAS", "2")
        assert replication.default_replicas() == 2

        async def go():
            sup, cc = await _cluster(shards=2, replicas=2)
            try:
                assert sup.replicas == 2
                # the client inherits the supervisor's degree: routing and
                # rebalancing must agree on every path's replica set
                assert cc.replication.replicas == 2
                assert cc.replication.active
                with pytest.raises(ValueError):
                    ReplicationManager(cc, replicas=0)
                with pytest.raises(ValueError):
                    ReplicationManager(cc, replicas=2, write_quorum=3)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_write_fans_out_to_every_replica(self):
        async def go():
            sup, cc = await _cluster()
            try:
                path = "/fan/out.dat"
                await cc.open(path, size_blocks=4)
                sids = cc.replication.replica_sids(path)
                assert len(sids) == 2
                for blockno in range(4):
                    await cc.write(path, blockno)
                # bypass routing: each replica must hold a warm copy
                for sid in sids:
                    for blockno in range(4):
                        assert await cc.clients[sid].read(path, blockno)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_read_falls_over_to_surviving_replica(self):
        async def go():
            sup, cc = await _cluster()
            try:
                path = "/warm/failover.dat"
                await cc.open(path, size_blocks=4)
                for blockno in range(4):
                    await cc.write(path, blockno)
                primary = cc.replication.replica_sids(path)[0]
                await sup.kill(primary)
                for blockno in range(4):
                    assert await cc.read(path, blockno)  # warm, not refetched
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_write_with_down_replica_fences_then_repairs(self):
        async def go():
            sup, cc = await _cluster()
            try:
                path = "/fence/me.dat"
                await cc.open(path, size_blocks=2)
                await cc.write(path, 0)
                secondary = cc.replication.replica_sids(path)[1]
                await sup.kill(secondary)
                assert await cc.write(path, 0)  # quorum 1: still acked
                assert (secondary, path, 0) in cc.replication.fences
                assert cc.replication._fenced(secondary, path, 0)
                # repair against a still-dark shard fails gracefully and
                # re-arms the fence for the next lease period
                assert await cc.replication.repair(force=True) == 0
                assert (secondary, path, 0) in cc.replication.fences
                await sup.restart(secondary)
                assert await cc.replication.repair(force=True) == 1
                assert not cc.replication.fences
                assert await cc.read(path, 0)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_unmet_write_quorum_raises(self):
        async def go():
            sup, cc = await _cluster()
            try:
                path = "/quorum/two.dat"
                await cc.open(path, size_blocks=1)
                cc.replication = ReplicationManager(cc, replicas=2, write_quorum=2)
                victim = cc.replication.replica_sids(path)[1]
                await sup.kill(victim)
                with pytest.raises(ReplicationError):
                    await cc.write(path, 0)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_write_heals_a_replica_that_missed_the_open(self):
        async def go():
            sup, cc = await _cluster()
            try:
                path = "/heal/late-joiner.dat"
                secondary = cc.replication.replica_sids(path)[1]
                await sup.kill(secondary)
                await cc.open(path, size_blocks=2)  # secondary misses the create
                await sup.restart(secondary)
                # the replica refuses with FS (it never saw the create);
                # the fan-out heals it with open+retry instead of fencing
                await cc.write(path, 0)
                assert await cc.clients[secondary].read(path, 0)
                assert not cc.replication.fences
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_invalidate_and_bundles_fan_out(self):
        async def go():
            sup, cc = await _cluster()
            try:
                paths = ["/bundle/a.dat", "/bundle/b.dat"]
                for path in paths:
                    await cc.open(path, size_blocks=2)
                    for blockno in range(2):
                        await cc.write(path, blockno)
                # both replicas drop their copies: 2 blocks x 2 shards
                assert await cc.invalidate(paths[0]) == 4
                for sid in cc.replication.replica_sids(paths[0]):
                    assert not await cc.clients[sid].read(paths[0], 0)
                summary = await cc.declare_bundle("hot-set", paths, action="fetch")
                assert summary["bundle"] == "hot-set"
                assert summary["shards"] >= 2
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_batches_split_remerge_and_survive_a_dark_shard(self):
        async def go():
            sup, cc = await _cluster()
            try:
                paths = [f"/batch/{i}.dat" for i in range(6)]
                for path in paths:
                    await cc.open(path, size_blocks=4)
                ops = [(path, blockno) for path in paths for blockno in range(4)]
                for reply in await cc.writev(ops):
                    assert "error" not in reply
                victim = cc.shard_of(paths[0])
                await sup.kill(victim)
                # a read past EOF pins caller order: the error record must
                # come back at exactly the index it was issued at
                ops_with_error = ops[:7] + [(paths[0], 99)] + ops[7:]
                results = await cc.readv(ops_with_error)
                assert len(results) == len(ops_with_error)
                assert results[7].get("code") == "FS"
                for i, reply in enumerate(results):
                    if i != 7:
                        assert reply.get("hit"), (i, reply)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())


# ---------------------------------------------------------------------------
# acceptance battery: warm failover + bounded migration
# ---------------------------------------------------------------------------


class TestFailoverBattery:
    def test_acked_writes_survive_and_hits_stay_warm(self):
        """Acceptance criteria for R=2: a mid-workload crash loses no
        acked write, and the post-failover hit ratio stays within 10% of
        the pre-failover ratio — the surviving replica serves warm."""

        async def go():
            sup, cc = await _cluster(shards=3, replicas=2, trace=True)
            try:
                paths = [f"/battery/{i}.dat" for i in range(12)]
                for path in paths:
                    await cc.open(path, size_blocks=4)
                # warm-up round with every shard up: pre-failover ratio
                for path in paths:
                    for blockno in range(4):
                        await cc.write(path, blockno)
                total = len(paths) * 4
                pre_hits = 0
                for path in paths:
                    for blockno in range(4):
                        pre_hits += bool(await cc.read(path, blockno))
                pre_ratio = pre_hits / total

                victim = cc.shard_of(paths[0])
                acked = set()

                async def writer(worker_paths):
                    for path in worker_paths:
                        for blockno in range(4):
                            while True:
                                try:
                                    await cc.write(path, blockno)
                                except (ConnectionError, RequestTimeout, ServerError):
                                    await asyncio.sleep(0.01)
                                    continue
                                acked.add((path, blockno))
                                break
                            await asyncio.sleep(0.002)

                async def assassin():
                    await asyncio.sleep(0.01)  # land the kill mid-stream
                    await sup.kill(victim)

                await asyncio.gather(
                    writer(paths[0::2]), writer(paths[1::2]), assassin()
                )
                assert len(acked) == total  # R=2 kept the write path available

                # the victim is still dark: every acked write reads back
                # from the surviving replica, warm
                post_hits = 0
                for path, blockno in sorted(acked):
                    post_hits += bool(await cc.read(path, blockno))
                post_ratio = post_hits / len(acked)
                assert post_ratio == 1.0  # no acked write was lost
                assert post_ratio >= pre_ratio - 0.10

                # restore and drain the fences the crash window accrued
                await sup.restart(victim)
                await cc.replication.repair(force=True)
                assert not cc.replication.fences
                # the restored primary serves again: its invalidated
                # copies miss once on refetch, then stay warm
                for path, blockno in sorted(acked):
                    await cc.read(path, blockno)
                for path, blockno in sorted(acked):
                    assert await cc.read(path, blockno)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_add_shard_migration_is_bounded_and_warm(self):
        """Acceptance criterion: growing the cluster moves at most 1.5x
        the ideal 1/N share of stored bytes, and the new ring serves
        every path warm the moment routing flips."""

        async def go():
            sup, cc = await _cluster(shards=3, replicas=2)
            try:
                paths = [f"/grow/{i}.dat" for i in range(30)]
                for path in paths:
                    await cc.open(path, size_blocks=4)
                    for blockno in range(4):
                        await cc.write(path, blockno)
                stored_copies = 2 * len(paths) * 4  # replicas x blocks
                summary = await sup.add_shard()
                assert summary["sid"] == "shard-3"
                ideal_share = stored_copies / len(sup.shards)  # 1/N, N=4
                assert 0 < summary["moved_blocks"] <= 1.5 * ideal_share
                moved_bytes = summary["moved_blocks"] * BLOCK_SIZE
                assert moved_bytes <= 1.5 * ideal_share * BLOCK_SIZE
                await cc.sync()
                for path in paths:
                    for blockno in range(4):
                        assert await cc.read(path, blockno)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())

    def test_remove_shard_migration_is_bounded_and_warm(self):
        async def go():
            sup, cc = await _cluster(shards=4, replicas=2)
            try:
                paths = [f"/shrink/{i}.dat" for i in range(30)]
                for path in paths:
                    await cc.open(path, size_blocks=4)
                    for blockno in range(4):
                        await cc.write(path, blockno)
                stored_copies = 2 * len(paths) * 4
                ideal_share = stored_copies / len(sup.shards)  # leaver's share
                summary = await sup.remove_shard("shard-3")
                assert summary["sid"] == "shard-3"
                assert 0 < summary["moved_blocks"] <= 1.5 * ideal_share
                await cc.sync()
                assert "shard-3" not in cc.clients
                for path in paths:
                    for blockno in range(4):
                        assert await cc.read(path, blockno)
            finally:
                await cc.aclose()
                await sup.aclose()

        run(go())
