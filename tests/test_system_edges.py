"""Kernel edge cases: attribution, contention, daemon interplay, sharing."""

import pytest

from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.core.interface import FBehaviorOp
from repro.kernel.system import MachineConfig, System
from repro.sim.ops import BlockRead, BlockWrite, Compute, Control, CreateFile


def cfg(**kw):
    kw.setdefault("cache_mb", 0.5)
    return MachineConfig(**kw)


class TestAttribution:
    def test_writeback_charged_to_dirtier_not_evictor(self):
        """Process A dirties blocks; B's misses push them out.  The write
        I/Os must appear in A's counters (it created the traffic)."""
        system = System(cfg(cache_mb=0.25, sync_interval_s=10_000.0))
        system.add_file("bdata", nblocks=64)

        def writer():
            yield CreateFile("out")
            for b in range(24):
                yield BlockWrite("out", b)

        def reader():
            yield Compute(0.5)  # let the writer fill the cache first
            for b in range(64):
                yield BlockRead("bdata", b)

        system.spawn("writer", writer())
        system.spawn("reader", reader())
        result = system.run()
        assert result.proc("writer").stats.disk_writes == 24
        assert result.proc("reader").stats.disk_writes == 0

    def test_daemon_flush_charged_to_owner(self):
        system = System(cfg(sync_interval_s=1.0))

        def writer():
            yield CreateFile("out")
            yield BlockWrite("out", 0)
            yield Compute(3.0)  # stay alive across a daemon tick

        system.spawn("writer", writer())
        result = system.run()
        assert result.proc("writer").stats.disk_writes == 1

    def test_no_double_charge_for_flushed_then_evicted(self):
        """A block flushed by the daemon is clean; its later eviction must
        not produce a second write."""
        system = System(cfg(cache_mb=0.25, sync_interval_s=1.0))
        system.add_file("bdata", nblocks=64)

        def prog():
            yield CreateFile("out")
            yield BlockWrite("out", 0)
            yield Compute(2.0)               # daemon flushes the block
            for b in range(64):              # churn evicts it (clean)
                yield BlockRead("bdata", b)

        system.spawn("p", prog())
        result = system.run()
        assert result.proc("p").stats.disk_writes == 1


class TestSpawnAndScheduling:
    def test_late_spawn_during_run(self):
        """A Fork-spawned process starting mid-run finishes and is counted."""
        from repro.sim.ops import Fork

        def child():
            yield Compute(0.2)

        def parent():
            yield Compute(0.1)
            yield Fork("late", child())

        system = System(cfg())
        system.spawn("parent", parent())
        result = system.run()
        assert result.procs["late"].finish_time > 0.2

    def test_io_bound_not_starved_by_compute_bound(self):
        """The preemptive CPU: a hit-loop reader beside a cruncher."""
        system = System(cfg(cache_mb=1.0))
        system.add_file("hot", nblocks=8)

        def cruncher():
            for _ in range(100):
                yield Compute(0.010)

        def reader():
            for i in range(200):
                yield BlockRead("hot", i % 8)

        system.spawn("cruncher", cruncher())
        system.spawn("reader", reader())
        result = system.run()
        # The reader's work is ~8 misses + 200 cheap hits: far less than a
        # second of CPU.  Without preemption it would wait ~0.5 s of
        # cruncher chunks; with it, it finishes long before the cruncher.
        assert result.proc("reader").finish_time < result.proc("cruncher").finish_time * 0.7

    def test_bus_contention_extends_two_disk_runs(self):
        def reader(path, n):
            def prog():
                for b in range(n):
                    yield BlockRead(path, b)

            return prog()

        def run(shared_bus):
            system = System(cfg(shared_bus=shared_bus))
            system.add_file("a", nblocks=200, disk="RZ56")
            system.add_file("b", nblocks=200, disk="RZ26")
            system.spawn("pa", reader("a", 200))
            system.spawn("pb", reader("b", 200))
            return system.run().makespan

        assert run(shared_bus=True) >= run(shared_bus=False)


class TestSharedFilesInKernel:
    def test_shared_file_keeps_designated_manager(self):
        system = System(cfg(cache_mb=1.0, policy=LRU_SP))
        system.add_file("shared", nblocks=16)

        def manager_proc():
            yield Control(FBehaviorOp.SET_POLICY, (0, "mru"))
            for b in range(16):
                yield BlockRead("shared", b)
            yield Compute(0.5)

        def other_proc():
            yield Compute(0.2)
            for b in range(16):
                yield BlockRead("shared", b)

        mgr = system.spawn("mgr", manager_proc())
        system.spawn("other", other_proc())
        fid = system.fs.lookup("shared").file_id
        system.acm.share_file(fid, mgr.pid)
        system.run()
        for block in system.cache.blocks_of_file(fid):
            assert block.owner_pid == mgr.pid

    def test_second_reader_of_shared_file_hits(self):
        system = System(cfg(cache_mb=1.0))
        system.add_file("shared", nblocks=16)

        def first():
            for b in range(16):
                yield BlockRead("shared", b)

        def second():
            yield Compute(1.0)
            for b in range(16):
                yield BlockRead("shared", b)

        system.spawn("first", first())
        system.spawn("second", second())
        result = system.run()
        assert result.proc("second").stats.hits == 16
        assert result.proc("second").stats.disk_reads == 0


class TestConfig:
    def test_single_disk_machine(self):
        from repro.disk.params import RZ56

        system = System(MachineConfig(cache_mb=0.5, disks=(RZ56,)))
        system.add_file("f", nblocks=4)

        def prog():
            yield BlockRead("f", 0)

        system.spawn("p", prog())
        result = system.run()
        assert set(result.disk_stats) == {"RZ56"}

    def test_settle_false_leaves_dirty_uncounted(self):
        def prog():
            yield CreateFile("out")
            yield BlockWrite("out", 0)

        system = System(cfg(sync_interval_s=10_000.0))
        system.spawn("p", prog())
        result = system.run(settle=False)
        assert result.proc("p").stats.disk_writes == 0

    def test_upcall_cost_configurable(self):
        from repro.core.upcall import MRUHandler, UpcallACM
        from repro.workloads import Dinero

        def run(ms):
            acm = UpcallACM()
            system = System(cfg(cache_mb=0.5, upcall_cpu_ms=ms), acm=acm)
            Dinero(smart=False, trace_blocks=100, passes=3, cpu_per_block=0.001).spawn(system)
            system.acm.register_handler(1, MRUHandler())
            return system.run().proc("din").elapsed

        assert run(5.0) > run(0.0)


class TestOccupancySampling:
    def test_disabled_by_default(self):
        system = System(cfg())
        system.spawn("p", iter([Compute(1.0)]))
        result = system.run()
        assert result.occupancy_samples == []

    def test_samples_collected_at_interval(self):
        system = System(cfg(sample_occupancy_s=0.5))
        system.add_file("f", nblocks=8)

        def prog():
            for i in range(8):
                yield BlockRead("f", i)
                yield Compute(0.3)

        system.spawn("p", prog())
        result = system.run()
        assert len(result.occupancy_samples) >= 3
        times = [t for t, _ in result.occupancy_samples]
        assert times == sorted(times)

    def test_occupancy_counts_frames_per_pid(self):
        system = System(cfg(cache_mb=1.0, sample_occupancy_s=0.5))
        system.add_file("f", nblocks=8)

        def prog():
            for i in range(8):
                yield BlockRead("f", i)
            yield Compute(1.0)

        proc = system.spawn("p", prog())
        result = system.run()
        final = result.occupancy_samples[-1][1]
        assert final[proc.pid] == 8

    def test_lru_sp_preserves_victim_allocation(self):
        """The allocation view of Table 1: with placeholders the oblivious
        reader keeps ~its working set; without, the fool erodes it."""
        from repro.core.allocation import LRU_S
        from repro.workloads import ReadN
        from repro.workloads.readn import ReadNBehavior

        def run(policy):
            system = System(MachineConfig(
                cache_mb=6.4, policy=policy, sample_occupancy_s=5.0))
            fg = ReadN(n=490, file_blocks=1176,
                       behavior=ReadNBehavior.OBLIVIOUS, cpu_per_block=0.0015)
            bg = ReadN(n=300, file_blocks=1310,
                       behavior=ReadNBehavior.FOOLISH, cpu_per_block=0.0015)
            p_fg = fg.spawn(system)
            bg.spawn(system)
            result = system.run()
            mids = [s for t, s in result.occupancy_samples if 10 < t < 40]
            return sum(s.get(p_fg.pid, 0) for s in mids) / max(1, len(mids))

        protected = run(LRU_SP)
        unprotected = run(LRU_S)
        assert protected > 450        # near its full 490-frame working set
        assert unprotected < protected - 50
