"""repro.workloads.production: generator statistics, traces, registry.

The statistical tests pin the *distributions* the pattern kit promises —
Zipf frequency-rank slope, hotspot access shares, Poisson inter-arrival
mean/CV, flash-crowd ramp shape — under fixed seeds with tolerances wide
enough to be deterministic.  Determinism itself is pinned byte-for-byte:
the same seed must reproduce the identical reference stream, because the
perf gate and the load driver's reports are only comparable if the
offered traffic is.
"""

import math
import random
from collections import Counter

import pytest

from repro.workloads import make_profile, make_workload
from repro.workloads.production import (
    ClosedLoop,
    FlashCrowdPattern,
    HotspotPattern,
    OnOffArrivals,
    PoissonArrivals,
    ProductionTraffic,
    TraceError,
    TrafficOp,
    TrafficProfile,
    UniformPattern,
    ZipfianPattern,
    etc_profile,
    format_trace,
    parse_trace,
    reference_stream,
    rtdata_profile,
)
from repro.workloads.registry import PATTERNS, PROFILES
from repro.workloads.synthetic import ZipfHotCold


# -- key patterns ----------------------------------------------------------


class TestPatterns:
    def test_uniform_covers_keyspace(self):
        pattern = UniformPattern(100)
        rng = random.Random(1)
        seen = {pattern.sample(rng) for _ in range(5000)}
        assert min(seen) == 0 and max(seen) == 99
        assert len(seen) > 95

    def test_zipf_rank_slope_matches_skew(self):
        # Frequency of rank k should fall as (k+1)^-s: the log-log slope
        # of the head ranks must sit near -s.
        skew = 0.99
        pattern = ZipfianPattern(1_000_000, skew=skew)
        rng = random.Random(7)
        counts = Counter(pattern.sample(rng) for _ in range(120_000))
        points = [
            (math.log(rank + 1), math.log(counts[rank]))
            for rank in (0, 1, 3, 9, 31, 99)
            if counts[rank] >= 40
        ]
        assert len(points) >= 5
        n = len(points)
        mean_x = sum(x for x, _ in points) / n
        mean_y = sum(y for _, y in points) / n
        slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / sum(
            (x - mean_x) ** 2 for x, _ in points
        )
        assert slope == pytest.approx(-skew, abs=0.1)

    def test_zipf_s_equal_one_works(self):
        pattern = ZipfianPattern(1000, skew=1.0)
        rng = random.Random(3)
        counts = Counter(pattern.sample(rng) for _ in range(20_000))
        # rank 0 should be ~ln(n)-fold more frequent than rank 9's 1/10
        assert counts[0] > counts[9] > counts[99]

    def test_zipf_stays_in_range(self):
        pattern = ZipfianPattern(10, skew=2.5)
        rng = random.Random(5)
        assert all(0 <= pattern.sample(rng) < 10 for _ in range(2000))

    def test_hotspot_share(self):
        pattern = HotspotPattern(10_000, hot_fraction=0.01, hot_weight=0.9)
        rng = random.Random(11)
        hot = sum(pattern.sample(rng) < pattern.hot for _ in range(20_000))
        assert hot / 20_000 == pytest.approx(0.9, abs=0.02)

    def test_flash_crowd_ramp_shape(self):
        pattern = FlashCrowdPattern(
            1000, crowd=10, base_weight=0.05, peak_weight=0.8,
            ramp_start=0.25, peak=0.5, ramp_end=0.75,
        )
        # the analytic ramp: flat, climb, peak, decay, flat
        assert pattern.crowd_weight(0.0) == pytest.approx(0.05)
        assert pattern.crowd_weight(0.375) == pytest.approx(0.425)
        assert pattern.crowd_weight(0.5) == pytest.approx(0.8)
        assert pattern.crowd_weight(0.625) == pytest.approx(0.425)
        assert pattern.crowd_weight(1.0) == pytest.approx(0.05)
        # and the sampled crowd share follows it
        rng = random.Random(2)
        at_peak = sum(
            pattern.sample(rng, progress=0.5) < 10 for _ in range(4000)
        )
        off_peak = sum(
            pattern.sample(rng, progress=0.0) < 10 for _ in range(4000)
        )
        assert at_peak / 4000 == pytest.approx(0.8, abs=0.03)
        assert off_peak / 4000 == pytest.approx(0.05 + 0.01 * 990 / 1000, abs=0.03)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            UniformPattern(0)
        with pytest.raises(ValueError):
            ZipfianPattern(10, skew=0.0)
        with pytest.raises(ValueError):
            HotspotPattern(10, hot_weight=1.5)
        with pytest.raises(ValueError):
            FlashCrowdPattern(10, crowd=11)
        with pytest.raises(ValueError):
            FlashCrowdPattern(10, ramp_start=0.5, peak=0.4, ramp_end=0.8)


# -- arrival processes -----------------------------------------------------


class TestArrivals:
    def test_poisson_mean_and_cv(self):
        rate = 500.0
        gaps = []
        times = PoissonArrivals(rate).times(random.Random(13))
        prev = 0.0
        for _ in range(20_000):
            t = next(times)
            gaps.append(t - prev)
            prev = t
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(var) / mean
        # exponential inter-arrivals: mean 1/rate, CV 1
        assert mean == pytest.approx(1.0 / rate, rel=0.05)
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_poisson_monotone(self):
        times = PoissonArrivals(50.0).times(random.Random(1))
        samples = [next(times) for _ in range(500)]
        assert samples == sorted(samples)
        assert all(t > 0 for t in samples)

    def test_on_off_gaps(self):
        proc = OnOffArrivals(1000.0, on_s=0.1, off_s=0.4)
        times = proc.times(random.Random(9))
        samples = [next(times) for _ in range(600)]
        assert samples == sorted(samples)
        # every arrival lands inside an on-window of the 0.5s cycle
        assert all((t % 0.5) <= 0.1 for t in samples)
        # silence gaps of ~off_s appear between bursts
        gaps = [b - a for a, b in zip(samples, samples[1:])]
        assert max(gaps) > 0.3

    def test_closed_loop_is_marked(self):
        assert not ClosedLoop().open_loop
        assert PoissonArrivals(1.0).open_loop
        assert OnOffArrivals(1.0).open_loop

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            OnOffArrivals(10.0, on_s=0.0)


# -- profiles and the reference stream -------------------------------------


class TestTrafficProfile:
    def test_same_seed_identical_stream(self):
        a = reference_stream(etc_profile(paths=5000), seed=42, count=2000)
        b = reference_stream(etc_profile(paths=5000), seed=42, count=2000)
        assert a == b

    def test_different_seed_different_stream(self):
        a = reference_stream(etc_profile(paths=5000), seed=1, count=500)
        b = reference_stream(etc_profile(paths=5000), seed=2, count=500)
        assert a != b

    def test_arrival_choice_leaves_key_stream_alone(self):
        # timestamps come from a derived RNG: swapping the arrival process
        # must not disturb which keys are accessed
        open_ops = list(
            TrafficProfile(
                "x", ZipfianPattern(1000), arrivals=PoissonArrivals(100.0)
            ).ops(7, 300)
        )
        closed_ops = list(
            TrafficProfile("x", ZipfianPattern(1000)).ops(7, 300)
        )
        assert [o.path for o in open_ops] == [o.path for o in closed_ops]
        assert all(o.ts is not None for o in open_ops)
        assert all(o.ts is None for o in closed_ops)

    def test_read_fraction_respected(self):
        profile = TrafficProfile(
            "x", UniformPattern(100), read_fraction=0.75
        )
        ops = list(profile.ops(3, 4000))
        reads = sum(op.op == "r" for op in ops)
        assert reads / 4000 == pytest.approx(0.75, abs=0.03)

    def test_value_blocks_range(self):
        profile = TrafficProfile(
            "x", UniformPattern(10), value_blocks=(2, 4), blocks_per_file=8
        )
        ops = list(profile.ops(5, 500))
        assert {op.size for op in ops} == {2, 3, 4}
        # a multi-block op never runs off the end of the file
        assert all(op.blockno + op.size <= 8 for op in ops)

    def test_phase_shift_migrates_hot_set(self):
        profile = TrafficProfile(
            "x",
            HotspotPattern(1000, hot=10, hot_weight=0.95),
            phase_shift=0.5,
        )
        ops = list(profile.ops(9, 4000))
        early = {op.path for op in ops[:200]}
        late = {op.path for op in ops[-200:]}
        # the busiest paths at the end differ from the start
        assert early != late

    def test_presets_have_expected_shapes(self):
        etc = etc_profile()
        assert etc.read_fraction > 0.9
        assert isinstance(etc.arrivals, PoissonArrivals)
        rt = rtdata_profile()
        assert rt.read_fraction < etc.read_fraction
        assert isinstance(rt.arrivals, OnOffArrivals)
        assert rt.value_hi > 1

    def test_path_of_is_sharded_and_stable(self):
        profile = etc_profile(paths=1_000_000)
        assert profile.path_of(0) == "prod/00000/000.dat"
        assert profile.path_of(4096) == "prod/00001/000.dat"
        assert len({profile.path_of(k) for k in range(10_000)}) == 10_000

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            TrafficProfile("x", UniformPattern(10), read_fraction=1.5)
        with pytest.raises(ValueError):
            TrafficProfile(
                "x", UniformPattern(10), value_blocks=(1, 99), blocks_per_file=8
            )
        with pytest.raises(ValueError):
            TrafficProfile("x", UniformPattern(10), phase_shift=2.0)


# -- the CSV trace format --------------------------------------------------


class TestTraceFormat:
    def test_valid_corpus(self):
        ops = parse_trace(
            "a/f,r,0\n"
            "a/f,w,1,2\n"
            "b/g,read,3,1,0.5\n"
        )
        assert ops == [
            TrafficOp("a/f", "r", 0),
            TrafficOp("a/f", "w", 1, 2),
            TrafficOp("b/g", "r", 3, 1, 0.5),
        ]

    def test_sloppy_but_accepted(self):
        # blank lines, comments, stray whitespace, op aliases in any
        # case, empty optional columns, extra columns
        text = (
            "\n"
            "# a comment\n"
            "  a/f , GET , 4 \n"
            "a/f,Put,5,,\n"
            "a/f,write,6,2,1.5,ignored-extra\n"
            "   \n"
        )
        ops = parse_trace(text)
        assert [op.op for op in ops] == ["r", "w", "w"]
        assert ops[1].size == 1 and ops[1].ts is None
        assert ops[2].size == 2 and ops[2].ts == 1.5

    @pytest.mark.parametrize(
        "text,line_no,fragment",
        [
            ("a/f,r,0\nnot-a-csv-line\n", 2, "expected path"),
            ("a/f,frob,0\n", 1, "unknown op"),
            ("a/f,r,xyz\n", 1, "block"),
            ("# ok\n\n,r,0\n", 3, "empty path"),
            ("a/f,r,0,0\n", 1, "size"),
            ("a/f,r,0,1,huh\n", 1, "ts"),
            ("a/f,r,0,1,-3\n", 1, "ts"),
        ],
    )
    def test_rejected_with_line_number(self, text, line_no, fragment):
        with pytest.raises(TraceError) as excinfo:
            parse_trace(text)
        assert excinfo.value.line_no == line_no
        assert fragment in str(excinfo.value)

    def test_round_trip(self):
        profile = rtdata_profile(paths=200, rate=50.0)
        text = reference_stream(profile, seed=3, count=300)
        assert format_trace(parse_trace(text)) == text

    def test_source_named_in_error(self, tmp_path):
        from repro.workloads.production import load_trace

        path = tmp_path / "t.csv"
        path.write_text("a,r,0\nbad\n")
        with pytest.raises(TraceError) as excinfo:
            load_trace(str(path))
        assert str(path) in str(excinfo.value)
        assert excinfo.value.line_no == 2


# -- registry + simulator wrapper ------------------------------------------


class TestRegistryIntegration:
    def test_every_pattern_and_profile_registered(self):
        assert set(PATTERNS) == {"uniform", "zipf", "hotspot", "flashcrowd"}
        for name in ("etc", "rtdata", "uniform", "zipf", "hotspot", "flashcrowd"):
            assert callable(PROFILES[name])

    def test_make_profile(self):
        profile = make_profile("hotspot", paths=500)
        assert profile.paths == 500
        with pytest.raises(ValueError, match="unknown profile"):
            make_profile("nope")

    def test_make_workload_production(self):
        wl = make_workload("etc", paths=32, accesses=200, seed=5)
        ops = list(wl.program())
        assert len(ops) > 200  # accesses + hint prologue + compute pacing
        specs = wl.file_specs()
        assert len(specs) == 32
        assert all(spec.path.startswith("etc/") for spec in specs)

    def test_production_wrapper_deterministic(self):
        a = [
            (type(op).__name__, getattr(op, "path", None), getattr(op, "blockno", None))
            for op in make_workload("rtdata", paths=16, accesses=100, seed=4).program()
        ]
        b = [
            (type(op).__name__, getattr(op, "path", None), getattr(op, "blockno", None))
            for op in make_workload("rtdata", paths=16, accesses=100, seed=4).program()
        ]
        assert a == b

    def test_wrapper_caps_simulator_keyspace(self):
        with pytest.raises(ValueError, match="caps paths"):
            ProductionTraffic(paths=1_000_000)

    def test_oblivious_variant_issues_no_directives(self):
        wl = make_workload("etc", smart=False, paths=8, accesses=50)
        from repro.sim.ops import Control

        assert not any(isinstance(op, Control) for op in wl.program())

    def test_runs_on_the_simulator(self):
        from repro.kernel.system import MachineConfig, System

        system = System(MachineConfig(cache_mb=0.5))
        wl = make_workload("production", paths=12, accesses=150, seed=2)
        wl.spawn(system)
        system.run()
        stats = system.cache.stats
        assert stats.accesses >= 150


class TestZipfHotColdUnification:
    def test_delegates_to_hotspot_pattern(self):
        wl = ZipfHotCold(hot_blocks=10, cold_blocks=90)
        assert isinstance(wl._pattern, HotspotPattern)
        assert wl._pattern.hot == 10

    def test_synthetic_reexports_shared_samplers(self):
        import repro.workloads.production as production
        import repro.workloads.synthetic as synthetic

        assert synthetic.HotspotPattern is production.HotspotPattern
        assert synthetic.ZipfianPattern is production.ZipfianPattern
