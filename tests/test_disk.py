"""Disk substrate: parameters, service-time model, schedulers, the drive."""

import pytest

from repro.disk.drive import DiskDrive, DiskRequest
from repro.disk.model import ServiceTimeModel
from repro.disk.params import BLOCK_SIZE, RZ26, RZ56, DiskParams
from repro.disk.scheduler import CLookScheduler, FCFSScheduler, SSTFScheduler, make_scheduler
from repro.sim.engine import Engine
from repro.sim.resources import FCFSResource


class TestParams:
    def test_presets_match_paper(self):
        assert RZ56.capacity_mb == 665.0
        assert RZ56.avg_seek_ms == 16.0
        assert RZ56.avg_rot_ms == 8.3
        assert RZ56.transfer_mb_s == 1.875
        assert RZ26.capacity_mb == 1050.0
        assert RZ26.avg_seek_ms == 10.5
        assert RZ26.avg_rot_ms == 5.54
        assert RZ26.transfer_mb_s == 3.3

    def test_total_blocks(self):
        assert RZ56.total_blocks == int(665 * 1024 * 1024) // BLOCK_SIZE

    def test_cylinder_mapping(self):
        assert RZ56.cylinder_of(0) == 0
        assert RZ56.cylinder_of(RZ56.total_blocks - 1) == RZ56.cylinders - 1

    def test_transfer_time(self):
        assert RZ56.transfer_time(1) == pytest.approx(BLOCK_SIZE / (1.875e6))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskParams("x", -1, 10, 1, 5, 1.0, 100)
        with pytest.raises(ValueError):
            DiskParams("x", 100, 10, 20, 5, 1.0, 100)  # min seek > avg
        with pytest.raises(ValueError):
            DiskParams("x", 100, 10, 1, 5, 0, 100)
        with pytest.raises(ValueError):
            DiskParams("x", 100, 10, 1, 5, 1.0, 1)


class TestServiceModel:
    def test_seek_zero_distance(self):
        assert ServiceTimeModel(RZ56).seek_time(0) == 0.0

    def test_seek_single_cylinder_is_min(self):
        m = ServiceTimeModel(RZ56)
        assert m.seek_time(1) == pytest.approx(RZ56.min_seek_ms / 1e3)

    def test_seek_mean_distance_is_average(self):
        m = ServiceTimeModel(RZ56)
        assert m.seek_time(int(RZ56.cylinders / 3)) == pytest.approx(
            RZ56.avg_seek_ms / 1e3, rel=0.01
        )

    def test_seek_monotone(self):
        m = ServiceTimeModel(RZ56)
        assert m.seek_time(10) < m.seek_time(100) < m.seek_time(1000)

    def test_sequential_request_pays_only_gap(self):
        m = ServiceTimeModel(RZ56)
        assert m.positioning_time(100, 100) == pytest.approx(RZ56.seq_gap_ms / 1e3)

    def test_same_cylinder_pays_partial_rotation(self):
        m = ServiceTimeModel(RZ56)
        t = m.positioning_time(0, 5)  # same cylinder, not contiguous
        assert t == pytest.approx(0.5 * RZ56.avg_rot_ms / 1e3)

    def test_random_request_pays_seek_and_rotation(self):
        m = ServiceTimeModel(RZ56)
        far = RZ56.blocks_per_cylinder * 500
        t = m.positioning_time(0, far)
        assert t > (RZ56.avg_rot_ms / 1e3)

    def test_service_time_totals(self):
        m = ServiceTimeModel(RZ56)
        assert m.service_time(100, 100, 1) == pytest.approx(
            RZ56.seq_gap_ms / 1e3 + m.transfer_time(1)
        )

    def test_sequential_cheaper_than_random(self):
        m = ServiceTimeModel(RZ56)
        seq = m.service_time(100, 100)
        rnd = m.service_time(0, RZ56.total_blocks // 2)
        assert seq * 3 < rnd


class TestSchedulers:
    def make_reqs(self, lbas):
        return [DiskRequest(lba, 1, False, None) for lba in lbas]

    def test_fcfs_order(self):
        sched = FCFSScheduler()
        queue = self.make_reqs([500, 100, 300])
        assert sched.pick(queue, 0).lba == 500
        assert sched.pick(queue, 0).lba == 100

    def test_sstf_picks_closest(self):
        sched = SSTFScheduler(RZ56)
        bpc = RZ56.blocks_per_cylinder
        queue = self.make_reqs([bpc * 100, bpc * 10, bpc * 50])
        assert sched.pick(queue, 0).lba == bpc * 10

    def test_sstf_tie_breaks_by_arrival(self):
        sched = SSTFScheduler(RZ56)
        queue = self.make_reqs([100, 101])  # same cylinder
        assert sched.pick(queue, 0).lba == 100

    def test_clook_sweeps_upward(self):
        sched = CLookScheduler(RZ56)
        bpc = RZ56.blocks_per_cylinder
        queue = self.make_reqs([bpc * 5, bpc * 50, bpc * 20])
        head = bpc * 10
        assert sched.pick(queue, head).lba == bpc * 20

    def test_clook_wraps_to_lowest(self):
        sched = CLookScheduler(RZ56)
        bpc = RZ56.blocks_per_cylinder
        queue = self.make_reqs([bpc * 5, bpc * 2])
        head = bpc * 100
        assert sched.pick(queue, head).lba == bpc * 2

    def test_factory(self):
        assert isinstance(make_scheduler("fcfs", RZ56), FCFSScheduler)
        assert isinstance(make_scheduler("sstf", RZ56), SSTFScheduler)
        assert isinstance(make_scheduler("clook", RZ56), CLookScheduler)
        with pytest.raises(ValueError):
            make_scheduler("elevator-music", RZ56)


class TestDrive:
    def test_read_completes_with_service_time(self):
        eng = Engine()
        drive = DiskDrive(eng, RZ56)
        done = []
        drive.read(0, 1, lambda: done.append(eng.now))
        eng.run()
        assert len(done) == 1
        assert done[0] > 0

    def test_sequential_stream_faster_than_random(self):
        def run(lbas):
            eng = Engine()
            drive = DiskDrive(eng, RZ56)
            for lba in lbas:
                drive.read(lba, 1, lambda: None)
            eng.run()
            return eng.now

        seq = run(range(100))
        rnd = run([(i * 7919) % RZ56.total_blocks for i in range(100)])
        assert seq * 2 < rnd

    def test_stats(self):
        eng = Engine()
        drive = DiskDrive(eng, RZ26)
        drive.read(0, 1, lambda: None)
        drive.write(100, 2, None)
        eng.run()
        assert drive.stats.reads == 1
        assert drive.stats.writes == 1
        assert drive.stats.blocks_read == 1
        assert drive.stats.blocks_written == 2
        assert drive.stats.requests == 2
        assert drive.stats.busy_time > 0

    def test_fcfs_completion_order(self):
        eng = Engine()
        drive = DiskDrive(eng, RZ56)
        order = []
        drive.read(5000, 1, lambda: order.append("far"))
        drive.read(0, 1, lambda: order.append("near"))
        eng.run()
        assert order == ["far", "near"]

    def test_write_without_callback(self):
        eng = Engine()
        drive = DiskDrive(eng, RZ56)
        drive.write(0, 1)
        eng.run()
        assert drive.stats.writes == 1

    def test_shared_bus_serializes_transfers(self):
        def run(shared):
            eng = Engine()
            bus = FCFSResource(eng, "bus") if shared else None
            d1 = DiskDrive(eng, RZ56, bus=bus)
            d2 = DiskDrive(eng, RZ26, bus=bus)
            for i in range(50):
                d1.read(i, 1, lambda: None)
                d2.read(i, 1, lambda: None)
            eng.run()
            return eng.now

        assert run(shared=True) > run(shared=False)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            DiskRequest(-1, 1, False, None)
        with pytest.raises(ValueError):
            DiskRequest(0, 0, False, None)

    def test_wait_time_accumulates_under_load(self):
        eng = Engine()
        drive = DiskDrive(eng, RZ56)
        for i in range(10):
            drive.read(i * 1000, 1, lambda: None)
        eng.run()
        assert drive.stats.wait_time > 0
