"""Stack distances, miss-ratio curves, working sets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    lru_curve,
    policy_curve,
    stack_distances,
    working_set_profile,
)
from repro.core.allocation import LRU_SP
from repro.core.opt import lru_misses
from repro.trace.events import AccessRecord, DirectiveRecord
from repro.trace.recorder import record_workload
from repro.workloads import Dinero


class TestStackDistances:
    def test_cold_references_have_none(self):
        d = stack_distances([1, 2, 3])
        assert d.distances == [None, None, None]
        assert d.compulsory == 3
        assert d.nblocks == 3

    def test_immediate_reuse_distance_zero(self):
        d = stack_distances([1, 1])
        assert d.distances == [None, 0]

    def test_classic_example(self):
        # refs:      a  b  c  b  a
        # distances: -  -  -  1  2
        d = stack_distances("abcba")
        assert d.distances == [None, None, None, 1, 2]

    def test_cyclic_distances_equal_cycle_minus_one(self):
        trace = [0, 1, 2, 3] * 3
        d = stack_distances(trace)
        reuse = [x for x in d.distances if x is not None]
        assert set(reuse) == {3}

    def test_misses_at_matches_lru_simulation(self):
        trace = [(i * 13) % 7 for i in range(100)]
        d = stack_distances(trace)
        for size in (1, 2, 3, 5, 8):
            assert d.misses_at(size) == lru_misses(trace, size), size

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 20), max_size=150), st.integers(1, 12))
    def test_matches_lru_simulation_property(self, trace, size):
        assert stack_distances(trace).misses_at(size) == lru_misses(trace, size)

    def test_miss_counts_bulk(self):
        trace = [0, 1, 2, 0, 1, 2]
        d = stack_distances(trace)
        counts = d.miss_counts([1, 2, 3, 4])
        assert counts == {1: 6, 2: 6, 3: 3, 4: 3}

    def test_monotone_in_cache_size(self):
        trace = [(i * 7) % 11 for i in range(200)]
        d = stack_distances(trace)
        misses = [d.misses_at(s) for s in range(1, 12)]
        assert misses == sorted(misses, reverse=True)

    def test_histogram(self):
        hist = stack_distances([1, 1, 2, 1]).histogram()
        assert hist == {0: 1, 1: 1}

    def test_min_cache_for_hit_ratio(self):
        trace = [0, 1, 2] * 10
        d = stack_distances(trace)
        # All reuses have distance 2: a 3-frame cache hits all 27 reuses.
        assert d.min_cache_for_hit_ratio(0.9) == 3
        assert d.min_cache_for_hit_ratio(0.0) == 1

    def test_validation(self):
        d = stack_distances([1])
        with pytest.raises(ValueError):
            d.misses_at(0)
        with pytest.raises(ValueError):
            d.min_cache_for_hit_ratio(2.0)

    def test_empty_trace(self):
        d = stack_distances([])
        assert d.misses_at(4) == 0
        assert d.min_cache_for_hit_ratio(0.5) == 1


class TestCurves:
    def test_lru_curve_exact(self):
        trace = [(i * 3) % 8 for i in range(120)]
        curve = lru_curve(trace, [1, 2, 4, 8])
        for size in (1, 2, 4, 8):
            assert curve.points[size] == lru_misses(trace, size)

    def test_lru_curve_ratio(self):
        curve = lru_curve([0, 1] * 10, [2])
        assert curve.ratio_at(2) == pytest.approx(2 / 20)

    def test_policy_curve_beats_lru_on_cycles(self):
        din = Dinero(trace_blocks=20, passes=4)
        events = record_workload(din)
        refs = [(ev.path, ev.blockno) for ev in events if isinstance(ev, AccessRecord)]
        lru = lru_curve(refs, [10])
        sp = policy_curve(events, [10], policy=LRU_SP)
        assert sp.points[10] < lru.points[10]

    def test_curve_rows_sorted(self):
        curve = lru_curve([0, 1, 0, 1], [4, 1, 2])
        assert [r[0] for r in curve.as_rows()] == [1, 2, 4]

    def test_knee(self):
        trace = [0, 1, 2] * 20
        curve = lru_curve(trace, [1, 2, 3, 4, 5])
        assert curve.knee() == 3  # the cycle fits at 3 frames

    def test_knee_empty_curve_rejected(self):
        from repro.analysis.missratio import MissRatioCurve

        with pytest.raises(ValueError):
            MissRatioCurve("x", 0, {}).knee()


class TestWorkingSet:
    def test_constant_workload(self):
        profile = working_set_profile([0, 1, 2] * 10, window=6)
        assert profile.peak == 3
        assert profile.samples[-1][1] == 3

    def test_window_limits_size(self):
        profile = working_set_profile(range(100), window=10)
        assert profile.peak == 10

    def test_phase_change_visible(self):
        trace = [0, 1] * 20 + list(range(100, 130)) + [0, 1] * 20
        profile = working_set_profile(trace, window=8)
        assert profile.peak > 2
        assert profile.average < profile.peak

    def test_phases_counted(self):
        quiet = [0] * 30
        busy = list(range(1, 16))
        profile = working_set_profile(quiet + busy + quiet + busy, window=15)
        assert profile.phases() >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            working_set_profile([1], window=0)
        with pytest.raises(ValueError):
            working_set_profile([1], window=1, sample_every=0)

    def test_sampling_interval(self):
        profile = working_set_profile(range(50), window=5, sample_every=10)
        assert len(profile.samples) == 5
