"""End-to-end telemetry: traces and metrics through a live daemon.

These tests drive a real :class:`~repro.server.daemon.CacheDaemon` over the
in-process transport with tracing on, and assert the acceptance shape of
the telemetry subsystem: one request id spanning server → service → BUF →
disk, fault-injection events annotated on the same trace, and the
``metrics`` verb exposing Prometheus/JSON/trace views.
"""

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults.plan import FaultPlan
from repro.server import CacheClient, CacheDaemon, ServerError, build_config
from repro.telemetry import Telemetry, Tracer

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def run(coro):
    return asyncio.run(coro)


def traced_daemon(capacity=8192, **cfg):
    tel = Telemetry(tracer=Tracer(capacity=capacity))
    daemon = CacheDaemon(build_config(telemetry=True, **cfg), telemetry=tel)
    return daemon, tel


def spans_by_trace(tracer, trace_id):
    return [r for r in tracer.records() if r["trace_id"] == trace_id]


class TestFaultTrace:
    def test_disk_fault_annotated_on_single_request_trace(self):
        """A retried bad sector shows up as fault.disk events on the
        disk.load span of the *same* trace as the server request."""
        plan = FaultPlan.from_dict(
            {"block_faults": [{"disk": "RZ56", "lba": 10, "kind": "error", "count": 2, "write": False}]}
        )

        async def go():
            daemon, tel = traced_daemon(cache_mb=0.5, faults=plan)
            client = await CacheClient.connect_inproc(daemon, name="reader")
            await client.open("data", size_blocks=32)
            for blockno in range(32):
                assert await client.read("data", blockno) is False  # all cold
            await client.aclose()
            await daemon.aclose()
            return tel

        tel = run(go())
        tracer = tel.tracer
        faulted = [
            r for r in tracer.records()
            if r["name"] == "disk.load" and any(e["name"] == "fault.disk" for e in r.get("events", ()))
        ]
        assert len(faulted) == 1, "exactly one load hit the scheduled bad sector"
        load = faulted[0]
        kinds = [e["kind"] for e in load["events"] if e["name"] == "fault.disk"]
        assert kinds == ["error", "error"]  # count=2, then the retry succeeds
        assert load["attrs"]["attempts"] == 3
        assert load["attrs"]["ok"] is True

        # The whole request — wire frame to platter — shares one trace id.
        trace = spans_by_trace(tracer, load["trace_id"])
        names = {r["name"] for r in trace}
        assert {"server.request", "service.read", "buf.access", "disk.load"} <= names
        (root,) = [r for r in trace if r["parent_id"] is None]
        assert root["name"] == "server.request"
        assert root["attrs"]["verb"] == "read"
        assert root["trace_id"] == f"{root['attrs']['pid']}:{root['attrs']['req_id']}"

        # Retries were counted by the fault collectors too.
        assert tel.registry.value("repro_faults_disk_retries_total", refresh=True) == 2

    def test_manager_revocation_annotated_on_trace(self):
        """A scripted manager revocation leaves fault.manager and
        acm.revoked events inside the request trace that triggered it."""
        plan = FaultPlan.from_dict({"revoke_pids": [1], "revoke_after_consults": 1})

        async def go():
            daemon, tel = traced_daemon(cache_mb=0.25, faults=plan)  # 32 frames
            client = await CacheClient.connect_inproc(daemon, name="managed")
            await client.open("big", size_blocks=64)
            await client.set_priority("big", 0)  # registers a manager for pid 1
            for blockno in range(64):  # overflow the cache → consultations
                await client.read("big", blockno)
            await client.aclose()
            await daemon.aclose()
            return tel

        tel = run(go())
        events = [e for r in tel.tracer.records() for e in r.get("events", ())]
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        assert "fault.manager" in by_name
        assert by_name["fault.manager"][0]["pid"] == 1
        assert "acm.revoked" in by_name
        assert by_name["acm.revoked"][0]["reason"] == "faults"
        # Both events sit on spans of one and the same request trace.
        carriers = [
            r for r in tel.tracer.records()
            if any(e["name"] in ("fault.manager", "acm.revoked") for e in r.get("events", ()))
        ]
        assert len({r["trace_id"] for r in carriers}) == 1


class TestMetricsVerb:
    def test_all_formats_and_bad_request(self):
        async def go():
            daemon, tel = traced_daemon(cache_mb=0.5)
            client = await CacheClient.connect_inproc(daemon, name="scraper")
            await client.open("f", size_blocks=4)
            await client.read("f", 0)
            await client.read("f", 0)

            prom = await client.metrics("prometheus")
            assert prom["format"] == "prometheus"
            assert "repro_cache_hits_total 1" in prom["text"]
            assert "repro_session_accesses_total" in prom["text"]
            assert "repro_disk_service_seconds_bucket" in prom["text"]

            snap = await client.metrics("json")
            metrics = snap["telemetry"]["metrics"]
            assert metrics["repro_cache_accesses_total"]["samples"][0]["value"] == 2
            assert metrics["repro_session_hits_total"]["samples"][0]["labels"] == {"pid": "1"}

            trace = await client.metrics("trace")
            assert trace["tracing"]["finished"] > 0
            assert any(r["name"] == "service.read" for r in trace["spans"])

            both = await client.metrics("both")
            assert "text" in both and "telemetry" in both

            with pytest.raises(ServerError) as err:
                await client.metrics("xml")
            assert err.value.code == "BAD_REQUEST"

            await client.aclose()
            await daemon.aclose()

        run(go())

    def test_metrics_verb_without_tracer_still_serves(self):
        """metrics works on a hot-but-untraced daemon; trace view is empty."""

        async def go():
            daemon = CacheDaemon(build_config(cache_mb=0.5, telemetry=True))
            client = await CacheClient.connect_inproc(daemon)
            await client.open("f", size_blocks=2)
            await client.read("f", 1)
            prom = await client.metrics("prometheus")
            assert "repro_cache_misses_total 1" in prom["text"]
            trace = await client.metrics("trace")
            assert trace["tracing"] is None
            assert trace["spans"] == []
            await client.aclose()
            await daemon.aclose()

        run(go())


class TestStatsWireCompat:
    def test_stats_keeps_session_keys_and_adds_telemetry(self):
        async def go():
            daemon, _ = traced_daemon(cache_mb=0.5)
            client = await CacheClient.connect_inproc(daemon, name="compat")
            await client.open("f", size_blocks=4)
            await client.read("f", 0)
            stats = await client.stats()
            entry = next(s for s in stats["sessions"] if s["pid"] == client.pid)
            for key in (
                "opens", "accesses", "hits", "misses", "hit_ratio",
                "disk_reads", "disk_writes", "block_ios", "directives",
                "busy_rejections",
            ):
                assert key in entry, key
            assert entry["accesses"] == 1 and entry["opens"] == 1
            assert stats["telemetry"]["hot"] is True
            assert stats["telemetry"]["tracing"]["finished"] > 0
            await client.aclose()
            await daemon.aclose()

        run(go())


class TestMetricsCli:
    def test_cli_scrapes_prometheus_from_live_server(self, capsys):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), str(SRC_ROOT)) if p
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness.cli", "serve",
                "--port", "0", "--cache-mb", "0.25", "--telemetry",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            ready = proc.stdout.readline()
            assert "listening on" in ready
            port = int(ready.rsplit(":", 1)[1])

            async def warm():
                client = await CacheClient.connect_tcp("127.0.0.1", port, name="warm")
                await client.open("f", size_blocks=4)
                await client.read("f", 0)
                await client.aclose()

            run(warm())

            from repro.harness.cli import metrics_main

            assert metrics_main(["--port", str(port)]) == 0
            out = capsys.readouterr().out
            assert "# TYPE repro_cache_misses_total counter" in out
            assert "repro_session_accesses_total" in out

            assert metrics_main(["--port", str(port), "--format", "json"]) == 0
            out = capsys.readouterr().out
            assert '"repro_cache_accesses_total"' in out

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
