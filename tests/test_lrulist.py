"""LRUList: the O(1) list under the whole system, including LRU-SP's swap."""

import pytest
from hypothesis import given, strategies as st

from repro.core.lrulist import LRUList


def build(items):
    lst = LRUList()
    for item in items:
        lst.push_mru(item)
    return lst


def as_list(lst):
    return list(lst)


class TestBasicOps:
    def test_empty(self):
        lst = LRUList()
        assert len(lst) == 0
        assert not lst
        assert lst.lru is None
        assert lst.mru is None
        assert as_list(lst) == []

    def test_push_mru_order(self):
        lst = build(["a", "b", "c"])
        assert as_list(lst) == ["a", "b", "c"]
        assert lst.lru == "a"
        assert lst.mru == "c"

    def test_push_lru_order(self):
        lst = LRUList()
        for item in "abc":
            lst.push_lru(item)
        assert as_list(lst) == ["c", "b", "a"]

    def test_len_and_contains(self):
        lst = build(["a", "b"])
        assert len(lst) == 2
        assert "a" in lst
        assert "z" not in lst

    def test_push_duplicate_raises(self):
        lst = build(["a"])
        with pytest.raises(ValueError):
            lst.push_mru("a")
        with pytest.raises(ValueError):
            lst.push_lru("a")

    def test_remove_middle(self):
        lst = build(["a", "b", "c"])
        lst.remove("b")
        assert as_list(lst) == ["a", "c"]

    def test_remove_head_updates_lru(self):
        lst = build(["a", "b"])
        lst.remove("a")
        assert lst.lru == "b"

    def test_remove_tail_updates_mru(self):
        lst = build(["a", "b"])
        lst.remove("b")
        assert lst.mru == "a"

    def test_remove_only_element(self):
        lst = build(["a"])
        lst.remove("a")
        assert len(lst) == 0
        assert lst.lru is None and lst.mru is None

    def test_remove_absent_raises(self):
        lst = build(["a"])
        with pytest.raises(KeyError):
            lst.remove("z")

    def test_discard(self):
        lst = build(["a"])
        assert lst.discard("a") is True
        assert lst.discard("a") is False

    def test_move_to_mru(self):
        lst = build(["a", "b", "c"])
        lst.move_to_mru("a")
        assert as_list(lst) == ["b", "c", "a"]

    def test_move_to_mru_already_there(self):
        lst = build(["a", "b"])
        lst.move_to_mru("b")
        assert as_list(lst) == ["a", "b"]

    def test_move_to_lru(self):
        lst = build(["a", "b", "c"])
        lst.move_to_lru("c")
        assert as_list(lst) == ["c", "a", "b"]

    def test_insert_before(self):
        lst = build(["a", "c"])
        lst.insert_before("b", "c")
        assert as_list(lst) == ["a", "b", "c"]

    def test_insert_before_head(self):
        lst = build(["b"])
        lst.insert_before("a", "b")
        assert lst.lru == "a"

    def test_insert_before_missing_anchor(self):
        lst = build(["a"])
        with pytest.raises(KeyError):
            lst.insert_before("x", "nope")

    def test_iter_mru_first(self):
        lst = build(["a", "b", "c"])
        assert list(lst.items_mru_first()) == ["c", "b", "a"]

    def test_neighbours(self):
        lst = build(["a", "b", "c"])
        assert lst.next_toward_mru("a") == "b"
        assert lst.next_toward_mru("c") is None
        assert lst.prev_toward_lru("c") == "b"
        assert lst.prev_toward_lru("a") is None

    def test_clear(self):
        lst = build(["a", "b"])
        lst.clear()
        assert len(lst) == 0
        lst.push_mru("x")
        assert as_list(lst) == ["x"]


class TestSwap:
    def test_swap_adjacent(self):
        lst = build(["a", "b", "c", "d"])
        lst.swap("b", "c")
        assert as_list(lst) == ["a", "c", "b", "d"]

    def test_swap_adjacent_reversed_args(self):
        lst = build(["a", "b", "c", "d"])
        lst.swap("c", "b")
        assert as_list(lst) == ["a", "c", "b", "d"]

    def test_swap_non_adjacent(self):
        lst = build(["a", "b", "c", "d"])
        lst.swap("a", "d")
        assert as_list(lst) == ["d", "b", "c", "a"]

    def test_swap_head_and_middle(self):
        lst = build(["a", "b", "c"])
        lst.swap("a", "c")
        assert as_list(lst) == ["c", "b", "a"]

    def test_swap_same_item_noop(self):
        lst = build(["a", "b"])
        lst.swap("a", "a")
        assert as_list(lst) == ["a", "b"]

    def test_swap_missing_raises(self):
        lst = build(["a", "b"])
        with pytest.raises(KeyError):
            lst.swap("a", "z")

    def test_swap_two_element_list(self):
        lst = build(["a", "b"])
        lst.swap("a", "b")
        assert as_list(lst) == ["b", "a"]
        assert lst.lru == "b"
        assert lst.mru == "a"

    def test_swap_preserves_everything_else(self):
        lst = build(list("abcdefg"))
        lst.swap("b", "f")
        assert as_list(lst) == list("afcdebg")

    @given(
        st.lists(st.integers(), unique=True, min_size=2, max_size=30),
        st.data(),
    )
    def test_swap_is_a_position_exchange(self, items, data):
        lst = build(items)
        a = data.draw(st.sampled_from(items))
        b = data.draw(st.sampled_from(items))
        before = as_list(lst)
        lst.swap(a, b)
        after = as_list(lst)
        expected = list(before)
        ia, ib = before.index(a), before.index(b)
        expected[ia], expected[ib] = expected[ib], expected[ia]
        assert after == expected

    @given(st.lists(st.integers(), unique=True, min_size=2, max_size=20))
    def test_swap_twice_is_identity(self, items):
        lst = build(items)
        a, b = items[0], items[-1]
        lst.swap(a, b)
        lst.swap(a, b)
        assert as_list(lst) == items


class TestRandomisedConsistency:
    @given(st.lists(st.tuples(st.sampled_from("pqrm"), st.integers(0, 9)), max_size=200))
    def test_model_equivalence(self, ops):
        """Drive LRUList and a plain python-list model with the same ops."""
        lst = LRUList()
        model = []
        for op, key in ops:
            if op == "p":  # push_mru if absent
                if key not in model:
                    lst.push_mru(key)
                    model.append(key)
            elif op == "q":  # push_lru if absent
                if key not in model:
                    lst.push_lru(key)
                    model.insert(0, key)
            elif op == "r":  # remove if present
                if key in model:
                    lst.remove(key)
                    model.remove(key)
            elif op == "m":  # move_to_mru if present
                if key in model:
                    lst.move_to_mru(key)
                    model.remove(key)
                    model.append(key)
            assert as_list(lst) == model
            assert len(lst) == len(model)
            assert lst.lru == (model[0] if model else None)
            assert lst.mru == (model[-1] if model else None)
