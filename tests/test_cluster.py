"""repro.cluster: ring, supervisor, routing, aggregation, equivalence.

The load-bearing test is :class:`TestClusterEquivalence`: a 3-shard
cluster must do exactly the block I/O that three independent single
daemons do when handed the same ring-partitioned trace — sharding adds
routing, never cache behaviour.
"""

import asyncio
import contextlib
import io
import random

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterSupervisor,
    HashRing,
    HealthMonitor,
    merge_prometheus,
    stable_hash,
)
from repro.cluster.aggregate import merge_snapshots, merge_stats
from repro.harness.cli import metrics_main
from repro.server import CacheClient, CacheDaemon, build_config


def run(coro):
    return asyncio.run(coro)


# -- the ring --------------------------------------------------------------


class TestHashRing:
    def test_stable_hash_is_process_stable(self):
        # Pinned values: a changed hash function would silently re-partition
        # every deployed cluster.
        assert stable_hash("/data/a.bin") == stable_hash("/data/a.bin")
        assert stable_hash("shard-0#0") != stable_hash("shard-0#1")

    def test_same_shards_same_ring(self):
        a = HashRing(["s0", "s1", "s2"], vnodes=32)
        b = HashRing(["s0", "s1", "s2"], vnodes=32)
        for i in range(200):
            key = f"/f{i}.bin"
            assert a.shard_for(key) == b.shard_for(key)

    def test_all_shards_get_keys(self):
        ring = HashRing(["s0", "s1", "s2"], vnodes=64)
        groups = ring.partition(f"/f{i}.bin" for i in range(300))
        assert set(groups) == {"s0", "s1", "s2"}
        assert all(groups.values())
        assert sum(len(v) for v in groups.values()) == 300

    def test_exclude_remaps_to_live_shard(self):
        ring = HashRing(["s0", "s1", "s2"], vnodes=16)
        key = "/victim.bin"
        owner = ring.shard_for(key)
        fallback = ring.shard_for(key, exclude=frozenset({owner}))
        assert fallback != owner
        with pytest.raises(LookupError):
            ring.shard_for(key, exclude=frozenset({"s0", "s1", "s2"}))

    def test_remove_shard_only_moves_its_keys(self):
        ring = HashRing(["s0", "s1", "s2"], vnodes=32)
        keys = [f"/f{i}.bin" for i in range(200)]
        before = {k: ring.shard_for(k) for k in keys}
        ring.remove_shard("s1")
        for key, owner in before.items():
            if owner != "s1":
                assert ring.shard_for(key) == owner

    def test_spans_sum_to_one(self):
        ring = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        spans = ring.spans()
        assert abs(sum(spans.values()) - 1.0) < 1e-9
        assert all(width > 0 for width in spans.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([], vnodes=8)
        with pytest.raises(ValueError):
            HashRing(["s0"], vnodes=0)
        ring = HashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_shard("s0")
        with pytest.raises(ValueError):
            ring.remove_shard("nope")


# -- aggregation (pure functions) ------------------------------------------


PROM_A = """# HELP repro_x_total Things.
# TYPE repro_x_total counter
repro_x_total 3
# HELP repro_y Y.
# TYPE repro_y gauge
repro_y{kind="a"} 1
"""

PROM_B = """# HELP repro_x_total Things.
# TYPE repro_x_total counter
repro_x_total 4
"""


class TestMergePrometheus:
    def test_headers_deduplicated_and_samples_labelled(self):
        merged = merge_prometheus({"shard-0": PROM_A, "shard-1": PROM_B})
        assert merged.count("# HELP repro_x_total") == 1
        assert merged.count("# TYPE repro_x_total") == 1
        assert 'repro_x_total{shard="shard-0"} 3' in merged
        assert 'repro_x_total{shard="shard-1"} 4' in merged
        # existing labels keep their place after the shard label
        assert 'repro_y{shard="shard-0",kind="a"} 1' in merged

    def test_samples_grouped_under_their_family(self):
        merged = merge_prometheus({"shard-0": PROM_A, "shard-1": PROM_B})
        lines = merged.splitlines()
        x_header = lines.index("# TYPE repro_x_total counter")
        y_header = lines.index("# TYPE repro_y gauge")
        both = [i for i, line in enumerate(lines) if line.startswith("repro_x_total{")]
        assert all(x_header < i < y_header for i in both)

    def test_merge_snapshots_adds_shard_label(self):
        snap = {"repro_x_total": {"type": "counter", "help": "X.",
                                  "samples": [{"labels": {"pid": "1"}, "value": 2}]}}
        merged = merge_snapshots({"shard-0": snap, "shard-1": snap})
        samples = merged["repro_x_total"]["samples"]
        assert {s["labels"]["shard"] for s in samples} == {"shard-0", "shard-1"}
        assert all(s["labels"]["pid"] == "1" for s in samples)


# -- supervisor + client ---------------------------------------------------


class TestClusterBasics:
    def test_routed_ops_land_on_the_owning_shard(self):
        async def go():
            sup = ClusterSupervisor(shards=3, cache_mb=1, replicas=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="t")
            paths = [f"/f{i}.bin" for i in range(30)]
            for path in paths:
                await cc.open(path, size_blocks=2)
                await cc.read(path, 0)
            groups = sup.ring.partition(paths)
            for sid, owned in groups.items():
                stats = await cc.clients[sid].stats()
                (entry,) = stats["sessions"]
                # exactly the opens/reads for this shard's paths, no more
                assert entry["opens"] == len(owned)
                assert entry["accesses"] == len(owned)
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_fanout_stats_flush_and_policy(self):
        async def go():
            sup = ClusterSupervisor(shards=3, cache_mb=1, replicas=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="t")
            for i in range(12):
                path = f"/w{i}.bin"
                await cc.open(path, size_blocks=2)
                await cc.write(path, 0)
            stats = await cc.stats()
            assert stats["shard_count"] == 3
            assert stats["totals"]["accesses"] == 12
            assert set(stats["shards"]) == set(sup.ring.shards)
            flushed = await cc.flush()
            assert flushed == 12  # every written block was dirty
            await cc.set_policy(0, "mru")
            assert await cc.get_policy(0) == "mru"
            for sid in sup.ring.shards:  # fanned out to every shard
                assert await cc.clients[sid].get_policy(0) == "mru"
            pongs = await cc.ping()
            assert all(v.get("pong") for v in pongs.values())
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_cluster_metrics_have_shard_labels_everywhere(self):
        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="t")
            await cc.open("/m.bin", size_blocks=2)
            await cc.read("/m.bin", 0)
            reply = await cc.metrics(format="prometheus")
            text = reply["text"]
            assert text.count("# TYPE repro_cache_frames gauge") == 1
            for line in text.splitlines():
                if line.startswith("#") or not line.strip():
                    continue
                assert 'shard="' in line, f"unlabelled sample: {line}"
            # the cluster's own families ride along, already shard-labelled
            assert 'repro_cluster_requests_total{shard="shard-' in text
            snap = await cc.metrics(format="json")
            fam = snap["telemetry"]["metrics"]["repro_cache_frames"]
            shards = {s["labels"]["shard"] for s in fam["samples"]}
            assert shards == {"shard-0", "shard-1"}
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_route_spans_and_request_counters(self):
        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=1, trace=True, replicas=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="t")
            await cc.open("/s.bin", size_blocks=2)
            await cc.read("/s.bin", 0)
            records = sup.telemetry.tracer.records()
            routes = [r for r in records if r["name"] == "cluster.route"]
            assert len(routes) == 2  # open + read
            assert all(r["attrs"]["layer"] == "cluster" for r in routes)
            sid = cc.shard_of("/s.bin")
            assert all(r["attrs"]["shard"] == sid for r in routes)
            assert sup.telemetry.registry.value(
                "repro_cluster_requests_total", shard=sid
            ) == 2.0
            await cc.aclose()
            await sup.aclose()

        run(go())

    def test_kill_marks_down_and_refuses_connections(self):
        async def go():
            sup = ClusterSupervisor(shards=2, cache_mb=1)
            await sup.start()
            await sup.kill("shard-0")
            assert sup.statuses()["shard-0"] == "down"
            with pytest.raises(ConnectionError):
                await sup.daemon_of("shard-0").connect_inproc()
            assert sup.telemetry.registry.value(
                "repro_cluster_shard_up", shard="shard-0"
            ) == 0.0
            await sup.restart("shard-0")
            assert sup.statuses()["shard-0"] == "up"
            client = await CacheClient.connect(sup.endpoints("shard-0"), name="late")
            assert (await client.ping())["pong"] is True
            await client.aclose()
            await sup.aclose()

        run(go())

    def test_cluster_snapshot_shape(self):
        async def go():
            sup = ClusterSupervisor(shards=2, vnodes=8, cache_mb=1)
            await sup.start()
            snap = sup.cluster_snapshot()
            assert set(snap["shards"]) == {"shard-0", "shard-1"}
            assert snap["vnodes"] == 8
            assert abs(sum(snap["spans"].values()) - 1.0) < 1e-9
            await sup.aclose()

        run(go())


# -- the equivalence check -------------------------------------------------


def _trace(paths, blocks_per_file, ops):
    """A deterministic mixed read/write op list over ``paths``."""
    rng = random.Random(0x5EED)
    script = [("open", p) for p in paths]
    for _ in range(ops):
        path = rng.choice(paths)
        blockno = rng.randrange(blocks_per_file)
        kind = "write" if rng.random() < 0.3 else "read"
        script.append((kind, path, blockno))
    return script


async def _apply(client, op):
    if op[0] == "open":
        await client.open(op[1], size_blocks=4)
    elif op[0] == "read":
        await client.read(op[1], op[2])
    else:
        await client.write(op[1], op[2])


_COUNTERS = ("opens", "accesses", "hits", "misses", "disk_reads", "disk_writes", "block_ios")


class TestClusterEquivalence:
    def test_three_shards_match_three_single_daemons_exactly(self):
        """Acceptance criterion: per-shard block I/O counts match three
        independent single-daemon runs of the ring-partitioned trace."""

        async def go():
            paths = [f"/eq{i}.dat" for i in range(18)]
            script = _trace(paths, blocks_per_file=4, ops=160)
            # small cache -> real eviction pressure on every shard
            sup = ClusterSupervisor(shards=3, cache_mb=0.25, replicas=1)
            await sup.start()
            cc = await ClusterClient.connect(sup, name="eq")
            for op in script:
                await _apply(cc, op)
            await cc.flush()
            cluster_counts = {}
            for sid in sup.ring.shards:
                stats = await cc.clients[sid].stats()
                (entry,) = stats["sessions"]
                cluster_counts[sid] = {k: entry[k] for k in _COUNTERS}
            groups = sup.ring.partition(paths)
            await cc.aclose()
            await sup.aclose()

            for sid in groups:
                daemon = CacheDaemon(build_config(cache_mb=0.25))
                client = await CacheClient.connect_inproc(daemon, name="solo")
                owned = set(groups[sid])
                for op in script:
                    if op[1] in owned:
                        await _apply(client, op)
                await client.flush()
                stats = await client.stats()
                (entry,) = stats["sessions"]
                solo = {k: entry[k] for k in _COUNTERS}
                assert solo == cluster_counts[sid], f"{sid} diverged"
                await client.aclose()
                await daemon.aclose()

        run(go())


# -- multi-endpoint metrics CLI --------------------------------------------


async def _scrape_cli(argv):
    """Run ``metrics_main`` (which owns its own event loop) off-loop,
    with stdout captured; returns (exit_code, output)."""
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = await asyncio.to_thread(metrics_main, argv)
    return rc, out.getvalue()


async def _seeded_daemon():
    daemon = CacheDaemon(build_config(cache_mb=1))
    host, port = await daemon.start_tcp("127.0.0.1", 0)
    client = await CacheClient.connect_tcp(host, port, name="seed")
    await client.open("/seed.bin", size_blocks=2)
    await client.read("/seed.bin", 0)
    await client.aclose()
    return daemon, host, port


class TestMetricsCLIMultiEndpoint:
    def test_repeated_connect_merges_without_duplicate_headers(self):
        async def go():
            d0, h0, p0 = await _seeded_daemon()
            d1, h1, p1 = await _seeded_daemon()
            try:
                rc, text = await _scrape_cli(
                    ["--format", "prometheus",
                     "--connect", f"{h0}:{p0}", "--connect", f"{h1}:{p1}"]
                )
                assert rc == 0
                assert text.count("# TYPE repro_cache_frames gauge") == 1
                assert f'shard="{h0}:{p0}"' in text
                assert f'shard="{h1}:{p1}"' in text
                sample_lines = [
                    line for line in text.splitlines()
                    if line.strip() and not line.startswith("#")
                ]
                assert all('shard="' in line for line in sample_lines)
            finally:
                await d0.aclose()
                await d1.aclose()

        run(go())

    def test_all_shards_scrapes_consecutive_ports(self):
        """--all-shards N walks --port..--port+N-1 on --host."""

        async def go():
            daemons = []
            base = None
            # Find two free consecutive ports by binding shard 0 ephemerally
            # and then asking for port+1 (retry a few times if taken).
            for _ in range(10):
                d0 = CacheDaemon(build_config(cache_mb=1))
                host, port = await d0.start_tcp("127.0.0.1", 0)
                d1 = CacheDaemon(build_config(cache_mb=1))
                try:
                    await d1.start_tcp("127.0.0.1", port + 1)
                except OSError:
                    await d0.aclose()
                    await d1.aclose()
                    continue
                daemons = [d0, d1]
                base = port
                break
            assert daemons, "could not find consecutive free ports"
            try:
                rc, text = await _scrape_cli(
                    ["--port", str(base), "--all-shards", "2", "--format", "prometheus"]
                )
                assert rc == 0
                assert f'shard="127.0.0.1:{base}"' in text
                assert f'shard="127.0.0.1:{base + 1}"' in text
                assert text.count("# TYPE repro_cache_frames gauge") == 1
            finally:
                for daemon in daemons:
                    await daemon.aclose()

        run(go())

    def test_single_endpoint_output_is_unchanged(self):
        async def go():
            daemon = CacheDaemon(build_config(cache_mb=1))
            host, port = await daemon.start_tcp("127.0.0.1", 0)
            try:
                rc, text = await _scrape_cli(
                    ["--host", host, "--port", str(port), "--format", "prometheus"]
                )
                assert rc == 0
                assert "# TYPE" in text
                assert 'shard="' not in text  # classic single-daemon scrape
            finally:
                await daemon.aclose()

        run(go())

    def test_json_multi_endpoint_keyed_by_endpoint(self):
        async def go():
            d0, h0, p0 = await _seeded_daemon()
            d1, h1, p1 = await _seeded_daemon()
            try:
                rc, text = await _scrape_cli(
                    ["--format", "json",
                     "--connect", f"{h0}:{p0}", "--connect", f"{h1}:{p1}"]
                )
                assert rc == 0
                import json

                payload = json.loads(text)
                assert set(payload) == {f"{h0}:{p0}", f"{h1}:{p1}"}
            finally:
                await d0.aclose()
                await d1.aclose()

        run(go())

    def test_missing_endpoint_arguments_rejected(self):
        with pytest.raises(SystemExit):
            metrics_main(["--format", "json"])
        with pytest.raises(SystemExit):
            metrics_main(["--all-shards", "2"])  # needs --port
        with pytest.raises(SystemExit):
            metrics_main(["--connect", "not-an-endpoint"])


# -- merge_stats shape -----------------------------------------------------


class TestMergeStats:
    def test_totals_and_ratio(self):
        reply = {
            "server": {"sessions": 1, "requests_served": 10},
            "cache": {"resident": 5, "frames": 8},
            "sessions": [
                {"opens": 2, "accesses": 8, "hits": 6, "misses": 2,
                 "disk_reads": 2, "disk_writes": 1, "block_ios": 3,
                 "directives": 0, "busy_rejections": 0}
            ],
        }
        merged = merge_stats({"shard-0": reply, "shard-1": reply})
        assert merged["shard_count"] == 2
        assert merged["sessions"] == 2
        assert merged["requests_served"] == 20
        assert merged["totals"]["accesses"] == 16
        assert merged["hit_ratio"] == pytest.approx(12 / 16)
        assert merged["resident"] == 10 and merged["frames"] == 16
