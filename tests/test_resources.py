"""FCFS resources and the preemptive CPU."""

import pytest

from repro.sim.engine import Engine
from repro.sim.resources import FCFSResource, PreemptiveCPU


class TestFCFSResource:
    def test_single_request(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        done = []
        res.request(2.0, lambda: done.append(eng.now))
        eng.run()
        assert done == [2.0]

    def test_requests_queue_fifo(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        done = []
        res.request(1.0, lambda: done.append(("a", eng.now)))
        res.request(2.0, lambda: done.append(("b", eng.now)))
        eng.run()
        assert done == [("a", 1.0), ("b", 3.0)]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FCFSResource(Engine(), "r").request(-1, lambda: None)

    def test_busy_flag(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        assert not res.busy
        res.request(1.0, lambda: None)
        assert res.busy
        eng.run()
        assert not res.busy

    def test_queue_length(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        res.request(1.0, lambda: None)
        res.request(1.0, lambda: None)
        res.request(1.0, lambda: None)
        assert res.queue_length == 2  # one in service

    def test_busy_time_and_utilisation(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        res.request(1.0, lambda: None)
        res.request(1.0, lambda: None)
        eng.after(4.0, lambda: None)  # stretch the clock
        eng.run()
        assert res.busy_time == pytest.approx(2.0)
        assert res.utilisation() == pytest.approx(0.5)

    def test_completion_can_enqueue_more(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        done = []

        def second():
            done.append(eng.now)

        res.request(1.0, lambda: res.request(1.0, second))
        eng.run()
        assert done == [2.0]

    def test_completed_counter(self):
        eng = Engine()
        res = FCFSResource(eng, "r")
        for _ in range(3):
            res.request(0.5, lambda: None)
        eng.run()
        assert res.completed == 3


class TestPreemptiveCPU:
    def make(self, threshold=0.004):
        eng = Engine()
        return eng, PreemptiveCPU(eng, "cpu", hi_threshold=threshold)

    def test_short_jobs_run_fifo(self):
        eng, cpu = self.make()
        done = []
        cpu.request(0.001, lambda: done.append(("a", eng.now)))
        cpu.request(0.001, lambda: done.append(("b", eng.now)))
        eng.run()
        assert done == [("a", 0.001), ("b", 0.002)]

    def test_short_preempts_long(self):
        eng, cpu = self.make()
        done = []
        cpu.request(0.100, lambda: done.append(("long", eng.now)))
        # Arrives mid-service of the long job.
        eng.at(0.010, cpu.request, 0.001, lambda: done.append(("short", eng.now)))
        eng.run()
        assert done[0][0] == "short"
        assert done[0][1] == pytest.approx(0.011)
        # The long job resumes and finishes with no lost work.
        assert done[1][1] == pytest.approx(0.101)

    def test_work_conserving(self):
        eng, cpu = self.make()
        cpu.request(0.050, lambda: None)
        for i in range(5):
            eng.at(0.005 * (i + 1), cpu.request, 0.001, lambda: None)
        eng.run()
        assert cpu.busy_time == pytest.approx(0.055)
        assert eng.now == pytest.approx(0.055)

    def test_preemption_counted(self):
        eng, cpu = self.make()
        cpu.request(0.100, lambda: None)
        eng.at(0.010, cpu.request, 0.001, lambda: None)
        eng.run()
        assert cpu.preemptions == 1

    def test_short_does_not_preempt_short(self):
        eng, cpu = self.make()
        done = []
        cpu.request(0.003, lambda: done.append(("a", eng.now)))
        eng.at(0.001, cpu.request, 0.001, lambda: done.append(("b", eng.now)))
        eng.run()
        assert done[0][0] == "a"
        assert cpu.preemptions == 0

    def test_long_jobs_fifo_among_themselves(self):
        eng, cpu = self.make()
        done = []
        cpu.request(0.010, lambda: done.append("a"))
        cpu.request(0.010, lambda: done.append("b"))
        eng.run()
        assert done == ["a", "b"]

    def test_preempted_job_resumes_before_later_long_jobs(self):
        eng, cpu = self.make()
        done = []
        cpu.request(0.010, lambda: done.append("first"))
        eng.at(0.001, cpu.request, 0.001, lambda: done.append("hi"))
        eng.at(0.002, cpu.request, 0.010, lambda: done.append("second"))
        eng.run()
        assert done == ["hi", "first", "second"]

    def test_negative_time_rejected(self):
        _, cpu = self.make()
        with pytest.raises(ValueError):
            cpu.request(-0.1, lambda: None)

    def test_zero_length_job(self):
        eng, cpu = self.make()
        done = []
        cpu.request(0.0, lambda: done.append(eng.now))
        eng.run()
        assert done == [0.0]

    def test_many_preemptions_total_time_exact(self):
        eng, cpu = self.make()
        cpu.request(1.0, lambda: None)
        for i in range(100):
            eng.at(0.005 * (i + 1), cpu.request, 0.002, lambda: None)
        eng.run()
        assert cpu.busy_time == pytest.approx(1.0 + 100 * 0.002)

    def test_utilisation(self):
        eng, cpu = self.make()
        cpu.request(1.0, lambda: None)
        eng.after(2.0, lambda: None)
        eng.run()
        assert cpu.utilisation() == pytest.approx(0.5)
