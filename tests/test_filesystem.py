"""The simulated filesystem: creation, growth, layout, interleaving."""

import pytest

from repro.fs.filesystem import BLOCK_SIZE, Extent, File, FsError, SimFilesystem


@pytest.fixture
def fs():
    return SimFilesystem({"d0": 10000, "d1": 5000})


class TestCreate:
    def test_create_and_lookup(self, fs):
        f = fs.create("a", size_blocks=10)
        assert fs.lookup("a") is f
        assert fs.by_id(f.file_id) is f
        assert f.nblocks == 10
        assert f.size_bytes == 10 * BLOCK_SIZE

    def test_default_disk_is_first(self, fs):
        assert fs.create("a", 1).disk == "d0"

    def test_explicit_disk(self, fs):
        assert fs.create("a", 1, disk="d1").disk == "d1"

    def test_unknown_disk(self, fs):
        with pytest.raises(FsError):
            fs.create("a", 1, disk="d9")

    def test_duplicate_path(self, fs):
        fs.create("a", 1)
        with pytest.raises(FsError):
            fs.create("a", 1)

    def test_file_ids_unique_and_increasing(self, fs):
        ids = [fs.create(f"f{i}", 1).file_id for i in range(5)]
        assert ids == sorted(set(ids))

    def test_contiguous_allocation(self, fs):
        a = fs.create("a", 10)
        b = fs.create("b", 10)
        assert a.extents[0].start_lba + 10 == b.extents[0].start_lba

    def test_lookup_missing(self, fs):
        with pytest.raises(FsError):
            fs.lookup("nope")
        with pytest.raises(FsError):
            fs.by_id(999)

    def test_exists(self, fs):
        fs.create("a", 1)
        assert fs.exists("a")
        assert not fs.exists("b")

    def test_disk_full(self):
        fs = SimFilesystem({"tiny": 5})
        with pytest.raises(FsError):
            fs.create("big", 10)

    def test_free_blocks(self, fs):
        fs.create("a", 100)
        assert fs.free_blocks("d0") == 9900

    def test_needs_a_disk(self):
        with pytest.raises(ValueError):
            SimFilesystem({})


class TestAddressing:
    def test_lba_of(self, fs):
        f = fs.create("a", 10)
        base = f.extents[0].start_lba
        assert f.lba_of(0) == base
        assert f.lba_of(9) == base + 9

    def test_lba_out_of_range(self, fs):
        f = fs.create("a", 10)
        with pytest.raises(FsError):
            f.lba_of(10)
        with pytest.raises(FsError):
            f.lba_of(-1)

    def test_lba_across_extents(self):
        f = File(1, "x", "d0", nblocks=4, extents=[Extent(0, 2), Extent(100, 2)])
        assert [f.lba_of(i) for i in range(4)] == [0, 1, 100, 101]

    def test_extent_validation(self):
        with pytest.raises(ValueError):
            Extent(-1, 5)
        with pytest.raises(ValueError):
            Extent(0, 0)


class TestGrowth:
    def test_ensure_block_grows(self, fs):
        f = fs.create("a", 0)
        lba = fs.ensure_block(f, 0)
        assert f.nblocks == 1
        assert lba == f.lba_of(0)

    def test_sequential_growth_stays_contiguous(self, fs):
        f = fs.create("a", 0)
        lbas = [fs.ensure_block(f, b) for b in range(100)]
        assert lbas == list(range(lbas[0], lbas[0] + 100))
        assert len(f.extents) <= 2

    def test_growth_interleaved_with_other_files_fragments(self, fs):
        a = fs.create("a", 0)
        fs.ensure_block(a, 0)
        fs.create("wedge", 100)
        fs.ensure_block(a, 70)  # past the 64-block slack
        assert len(a.extents) == 2

    def test_ensure_existing_block_is_stable(self, fs):
        f = fs.create("a", 5)
        before = f.lba_of(3)
        assert fs.ensure_block(f, 3) == before

    def test_negative_block(self, fs):
        f = fs.create("a", 1)
        with pytest.raises(FsError):
            fs.ensure_block(f, -1)

    def test_growth_hits_disk_full(self):
        fs = SimFilesystem({"tiny": 10})
        f = fs.create("a", 0)
        with pytest.raises(FsError):
            fs.ensure_block(f, 50)


class TestUnlink:
    def test_unlink_removes(self, fs):
        fs.create("a", 1)
        fs.unlink("a")
        assert not fs.exists("a")

    def test_unlink_missing(self, fs):
        with pytest.raises(FsError):
            fs.unlink("a")

    def test_path_reusable_after_unlink(self, fs):
        f1 = fs.create("a", 1)
        fs.unlink("a")
        f2 = fs.create("a", 1)
        assert f2.file_id != f1.file_id


class TestInterleaved:
    def test_sizes_honoured(self, fs):
        files = fs.create_interleaved([("a", 5), ("b", 9)], chunk=2)
        assert [f.nblocks for f in files] == [5, 9]
        assert fs.lookup("a").capacity() >= 5

    def test_blocks_actually_interleave(self, fs):
        a, b = fs.create_interleaved([("a", 4), ("b", 4)], chunk=2)
        # a's second chunk comes after b's first chunk on disk.
        assert a.lba_of(2) > b.lba_of(0)

    def test_chunk_one_strides(self, fs):
        a, b, c = fs.create_interleaved([("a", 3), ("b", 3), ("c", 3)], chunk=1)
        assert a.lba_of(1) - a.lba_of(0) == 3  # stride = number of files

    def test_uneven_sizes(self, fs):
        a, b = fs.create_interleaved([("a", 1), ("b", 10)], chunk=4)
        assert b.capacity() >= 10
        assert a.lba_of(0) >= 0

    def test_bad_chunk(self, fs):
        with pytest.raises(ValueError):
            fs.create_interleaved([("a", 1)], chunk=0)

    def test_zero_size_rejected(self, fs):
        with pytest.raises(FsError):
            fs.create_interleaved([("a", 0)])
