"""Acceptance: the daemon's cache behaves exactly like the simulator's.

Four concurrent clients drive the daemon (sanitizer attached) with the
same per-client scripts a :class:`repro.kernel.system.System` run executes
as four processes.  The scripts use disjoint files, the cache is large
enough that nothing is evicted, and every written block is written once —
so each per-client counter is independent of how asyncio interleaves the
sessions, and must equal the simulator's numbers exactly.

The eviction-pressure case (where interleaving *does* matter) is covered
by ``tests/test_server_concurrency.py`` via trace replay of the daemon's
actual arrival order.
"""

import asyncio

from repro.kernel.system import MachineConfig, System
from repro.server import CacheClient, CacheDaemon, build_config
from repro.sim.ops import BlockRead, BlockWrite
from repro.workloads.base import set_policy, set_priority, set_temppri

# -- the shared scripts ----------------------------------------------------
#
# One script per client: (file, nblocks, [steps]).  Steps are plain tuples
# so the same list drives both the wire client and the simulated process.

def _scan(path, nblocks, passes):
    return [("read", path, b) for _ in range(passes) for b in range(nblocks)]


def _scripts():
    sym = [  # cscope-symbol-like: smart, MRU over one priority pool
        ("set_priority", "sym", 0),
        ("set_policy", 0, "mru"),
    ] + _scan("sym", 24, 3)
    text = [  # cscope-text-like: smart LRU, free-behind on the first pass
        ("set_priority", "text", 0),
        ("set_policy", 0, "lru"),
    ]
    for b in range(20):
        text.append(("read", "text", b))
        text.append(("set_temppri", "text", b, b, -1))
    text += _scan("text", 20, 1)
    sort = [("write", "out", b) for b in range(16)] + _scan("out", 16, 1)
    seq = _scan("seq", 30, 2)  # oblivious sequential reader
    return {
        "sym": (24, sym),
        "text": (20, text),
        "out": (16, sort),
        "seq": (30, seq),
    }


CACHE_MB = 2  # 256 frames; the scripts touch 90 distinct blocks — no eviction


async def _drive_daemon(scripts):
    daemon = CacheDaemon(build_config(cache_mb=CACHE_MB, sanitize=True))
    clients = {}
    for path, (nblocks, _) in scripts.items():  # sequential: pids 1..4
        client = await CacheClient.connect_inproc(daemon, name=path)
        await client.open(path, size_blocks=nblocks)
        clients[path] = client

    async def run_script(client, steps):
        for step in steps:
            verb = step[0]
            if verb == "read":
                await client.read(step[1], step[2])
            elif verb == "write":
                await client.write(step[1], step[2], whole=True)
            elif verb == "set_priority":
                await client.set_priority(step[1], step[2])
            elif verb == "set_policy":
                await client.set_policy(step[1], step[2])
            else:
                await client.set_temppri(step[1], step[2], step[3], step[4])

    await asyncio.gather(
        *(run_script(clients[path], steps) for path, (_, steps) in scripts.items())
    )
    for client in clients.values():
        await client.aclose()
    await daemon.aclose()  # flushes dirty blocks, charged to their owners
    daemon.service.cache.sanitizer.check_now("final")
    assert daemon.errors == []
    return {
        pid: daemon.service.counters_for(pid).as_dict()
        for pid in sorted(daemon.service.counters)
    }


def _drive_system(scripts):
    config = MachineConfig(cache_mb=CACHE_MB, readahead=False, sanitize=True)
    system = System(config)

    def program(steps):
        for step in steps:
            verb = step[0]
            if verb == "read":
                yield BlockRead(step[1], step[2])
            elif verb == "write":
                yield BlockWrite(step[1], step[2], whole=True)
            elif verb == "set_priority":
                yield set_priority(step[1], step[2])
            elif verb == "set_policy":
                yield set_policy(step[1], step[2])
            else:
                yield set_temppri(step[1], step[2], step[3], step[4])

    for path, (nblocks, steps) in scripts.items():  # spawn order = pids 1..4
        system.add_file(path, nblocks=nblocks)  # as the daemon's open-create
        system.spawn(path, program(steps))
    result = system.run(settle=True)
    system.cache.sanitizer.check_now("final")
    return {p.pid: p.stats for p in result.procs.values()}


def test_four_clients_match_the_simulator():
    scripts = _scripts()
    server = asyncio.run(_drive_daemon(scripts))
    sim = _drive_system(scripts)
    assert sorted(server) == sorted(sim) == [1, 2, 3, 4]
    for pid in sim:
        stats = sim[pid]
        entry = server[pid]
        assert entry["accesses"] == stats.accesses, pid
        assert entry["hits"] == stats.hits, pid
        assert entry["misses"] == stats.misses, pid
        assert entry["disk_reads"] == stats.disk_reads, pid
        assert entry["disk_writes"] == stats.disk_writes, pid
        assert entry["directives"] == stats.directives, pid


def test_block_ios_match_in_aggregate():
    scripts = _scripts()
    server = asyncio.run(_drive_daemon(scripts))
    sim = _drive_system(scripts)
    server_ios = sum(e["disk_reads"] + e["disk_writes"] for e in server.values())
    sim_ios = sum(s.disk_reads + s.disk_writes for s in sim.values())
    assert server_ios == sim_ios
    # 90 distinct blocks: 74 demand reads (16 written whole, never read
    # from disk) and 16 flush writes.
    assert server_ios == 74 + 16
