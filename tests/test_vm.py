"""Virtual-memory extension: the two-hand clock with swapping/placeholders."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import ALLOC_LRU, GLOBAL_LRU, LRU_S, LRU_SP
from repro.vm import ClockPagePool, VmSystem
from repro.vm.system import VmError


class TestClockBasics:
    def test_fault_then_hit(self):
        pool = ClockPagePool(4, policy=GLOBAL_LRU)
        fault, _ = pool.access(1, 1, 0)
        assert fault
        fault, _ = pool.access(1, 1, 0)
        assert not fault

    def test_capacity(self):
        pool = ClockPagePool(4, policy=GLOBAL_LRU)
        for p in range(20):
            pool.access(1, 1, p)
            assert pool.resident <= 4
        pool.check_invariants()

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockPagePool(1)
        with pytest.raises(ValueError):
            ClockPagePool(4, spread=0)
        with pytest.raises(ValueError):
            ClockPagePool(4, spread=4)

    def test_reference_bit_set_on_access(self):
        pool = ClockPagePool(4, policy=GLOBAL_LRU)
        pool.access(1, 1, 0)
        page = pool.peek(1, 0)
        assert pool.referenced(page)

    def test_second_chance(self):
        """A re-referenced page survives one extra lap."""
        pool = ClockPagePool(3, spread=1, policy=GLOBAL_LRU)
        for p in (0, 1, 2):
            pool.access(1, 1, p)
        pool.access(1, 1, 0)        # keep page 0's bit set
        pool.access(1, 1, 3)        # needs a frame
        assert pool.peek(1, 0) is not None

    def test_clock_tracks_lru_coarsely(self):
        """CLOCK is an approximation: near LRU, never wildly off it."""
        from repro.core.opt import lru_misses

        trace = [((i * i) % 31) % 12 for i in range(600)]
        pool = ClockPagePool(6, policy=GLOBAL_LRU)
        faults = sum(1 for p in trace if pool.access(1, 1, p)[0])
        reference = lru_misses(trace, 6)
        assert reference * 0.8 <= faults <= reference * 1.7

    def test_hand_steps_accounted(self):
        pool = ClockPagePool(3, policy=GLOBAL_LRU)
        for p in range(10):
            pool.access(1, 1, p)
        assert pool.stats.hand_steps > 0

    def test_invariants_under_churn(self):
        pool = ClockPagePool(5, policy=LRU_SP)
        pool.acm.register(1)
        pool.acm.set_policy(1, 0, "mru")
        for i in range(200):
            pool.access(1, 1, (i * 3) % 13)
            pool.check_invariants()


class TestTwoLevelOnClock:
    def _mru_pool(self, nframes=4, policy=LRU_SP):
        pool = ClockPagePool(nframes, policy=policy)
        pool.acm.register(1)
        pool.acm.set_policy(1, 0, "mru")
        return pool

    def test_consultation_changes_evictions(self):
        oblivious = ClockPagePool(4, policy=LRU_SP)
        smart = self._mru_pool(4)
        trace = [p % 6 for p in range(60)]
        base = sum(1 for p in trace if oblivious.access(1, 1, p)[0])
        managed = sum(1 for p in trace if smart.access(1, 1, p)[0])
        assert managed < base  # MRU wins the cyclic scan on the clock too

    def test_overrules_swap_ring_slots(self):
        pool = self._mru_pool(4)
        for p in range(6):
            pool.access(1, 1, p)
        assert pool.stats.swaps >= 1

    def test_lru_s_no_placeholders(self):
        pool = self._mru_pool(4, policy=LRU_S)
        for p in range(8):
            pool.access(1, 1, p)
        assert pool.stats.swaps >= 1
        assert len(pool.placeholders) == 0

    def test_alloc_clock_neither(self):
        pool = self._mru_pool(4, policy=ALLOC_LRU)
        for p in range(8):
            pool.access(1, 1, p)
        assert pool.stats.swaps == 0
        assert len(pool.placeholders) == 0

    def test_placeholder_fires_on_refault(self):
        pool = self._mru_pool(3)
        for p in (0, 1, 2):
            pool.access(1, 1, p)
        pool.access(1, 1, 3)   # MRU gives up page 2, placeholder 2 -> cand
        assert pool.placeholders.created >= 1
        pool.access(1, 1, 2)   # refault: the placeholder fires
        assert pool.placeholders.consumed >= 1
        assert pool.acm.managers[1].mistakes >= 1

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(1, 2), st.integers(0, 12)), max_size=150))
    def test_invariants_property(self, refs):
        pool = ClockPagePool(5, policy=LRU_SP)
        pool.acm.register(1)
        pool.acm.set_policy(1, 0, "mru")
        for pid, pageno in refs:
            pool.access(pid, pid, pageno)
            pool.check_invariants()
        table = pool.placeholders
        assert table.created == table.consumed + table.discarded + len(table)


class TestVmSystem:
    def test_region_lifecycle(self):
        vm = VmSystem(8)
        vm.create_region("heap", 16)
        assert vm.region("heap").npages == 16
        with pytest.raises(VmError):
            vm.create_region("heap", 4)
        with pytest.raises(VmError):
            vm.region("stack")

    def test_touch_bounds_checked(self):
        vm = VmSystem(8)
        vm.create_region("heap", 4)
        with pytest.raises(VmError):
            vm.touch(1, "heap", 4)

    def test_fault_accounting(self):
        vm = VmSystem(8)
        vm.create_region("heap", 4)
        vm.touch(1, "heap", 0)
        vm.touch(1, "heap", 0)
        assert vm.faults(1) == 1
        assert vm.per_pid[1].accesses == 2
        assert vm.per_pid[1].fault_ratio == 0.5

    def test_faults_for_unknown_pid(self):
        assert VmSystem(8).faults(42) == 0

    def test_region_priority_protects_index_pages(self):
        def run(smart):
            vm = VmSystem(16, spread=4)
            vm.create_region("index", 8)
            vm.create_region("data", 64)
            if smart:
                vm.set_region_priority(1, "index", 1)
            # interleave hot index touches with a long data scan
            for round_ in range(4):
                for p in range(8):
                    vm.touch(1, "index", p)
                for p in range(64):
                    vm.touch(1, "data", p)
            return vm.faults(1)

        assert run(smart=True) < run(smart=False)

    def test_done_with_advice_recycles_scan_pages(self):
        def run(advise):
            vm = VmSystem(16, spread=4)
            vm.create_region("hot", 8)
            vm.create_region("scan", 64)
            vm.set_region_priority(1, "hot", 0)  # register the manager
            for p in range(8):
                vm.touch(1, "hot", p)
            for p in range(64):
                vm.touch(1, "scan", p)
                if advise:
                    vm.advise_done_with(1, "scan", p, p)
            for p in range(8):
                vm.touch(1, "hot", p)
            return vm.faults(1)

        assert run(advise=True) < run(advise=False)

    def test_will_need_advice(self):
        vm = VmSystem(8, spread=2)
        vm.create_region("r", 16)
        vm.set_region_priority(1, "r", 0)
        for p in range(8):
            vm.touch(1, "r", p)
        vm.advise_will_need(1, "r", 0, 1)
        page = vm.pool.peek(vm.region("r").region_id, 0)
        assert page.pool_prio == vm.high_temp_priority

    def test_advice_range_validation(self):
        vm = VmSystem(8)
        vm.create_region("r", 4)
        with pytest.raises(VmError):
            vm.advise_done_with(1, "r", 2, 9)
