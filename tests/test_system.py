"""The kernel (System): end-to-end behaviour of small programs."""

import pytest

from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.core.interface import FBehaviorOp
from repro.fs.filesystem import FsError
from repro.kernel.system import MachineConfig, System
from repro.sim.ops import (
    BlockRead,
    BlockWrite,
    Compute,
    Control,
    CreateFile,
    DeleteFile,
    Fork,
)


def small_config(**kwargs):
    kwargs.setdefault("cache_mb", 0.5)
    return MachineConfig(**kwargs)


def run_program(program, nblocks=64, config=None, name="p"):
    system = System(config or small_config())
    system.add_file("data", nblocks=nblocks)
    system.spawn(name, program)
    result = system.run()
    return system, result


class TestPrograms:
    def test_empty_program(self):
        _, result = run_program(iter(()))
        assert result.proc("p").elapsed == 0.0

    def test_compute_takes_time(self):
        def prog():
            yield Compute(2.0)

        _, result = run_program(prog())
        assert result.proc("p").elapsed == pytest.approx(2.0)
        assert result.proc("p").stats.cpu_time == pytest.approx(2.0)

    def test_read_counts_miss_then_hit(self):
        def prog():
            yield BlockRead("data", 0)
            yield BlockRead("data", 0)

        _, result = run_program(prog())
        st = result.proc("p").stats
        assert st.misses == 1 and st.hits == 1
        assert st.disk_reads == 1

    def test_read_past_eof_raises(self):
        def prog():
            yield BlockRead("data", 99)

        with pytest.raises(FsError):
            run_program(prog(), nblocks=10)

    def test_read_missing_file_raises(self):
        def prog():
            yield BlockRead("nope", 0)

        with pytest.raises(FsError):
            run_program(prog())

    def test_write_extends_file(self):
        def prog():
            yield CreateFile("out")
            for b in range(10):
                yield BlockWrite("out", b)

        system, result = run_program(prog())
        assert system.fs.lookup("out").nblocks == 10
        # Delayed writes flush at settle and count as block I/Os.
        assert result.proc("p").stats.disk_writes == 10

    def test_makespan_excludes_settle_flush(self):
        def prog():
            yield CreateFile("out")
            yield BlockWrite("out", 0)

        _, result = run_program(prog())
        assert result.settle_time >= result.makespan

    def test_delete_file_discards_dirty_blocks(self):
        def prog():
            yield CreateFile("tmp")
            for b in range(5):
                yield BlockWrite("tmp", b)
            yield DeleteFile("tmp")

        system, result = run_program(prog())
        assert not system.fs.exists("tmp")
        assert result.proc("p").stats.disk_writes == 0  # never reached disk

    def test_partial_write_reads_first(self):
        def prog():
            yield BlockWrite("data", 0, whole=False)

        _, result = run_program(prog())
        st = result.proc("p").stats
        assert st.disk_reads == 1
        assert st.disk_writes == 1  # flushed at settle

    def test_control_registers_manager(self):
        def prog():
            yield Control(FBehaviorOp.SET_POLICY, (0, "mru"))
            yield BlockRead("data", 0)

        system, result = run_program(prog())
        assert system.acm.manager(result.proc("p").pid) is not None
        assert result.proc("p").stats.directives == 1

    def test_control_get_returns_value(self):
        seen = {}

        def prog():
            yield Control(FBehaviorOp.SET_PRIORITY, ("data", 2))
            seen["prio"] = yield Control(FBehaviorOp.GET_PRIORITY, ("data",))

        run_program(prog())
        assert seen["prio"] == 2

    def test_fork_spawns_concurrent_child(self):
        def child():
            yield Compute(1.0)

        def parent():
            yield Fork("kid", child())
            yield Compute(0.5)

        system = System(small_config())
        system.spawn("parent", parent())
        result = system.run()
        assert "kid" in result.procs
        # one CPU: the parent's 0.5 s and the child's 1.0 s serialize
        assert result.makespan == pytest.approx(1.5, abs=0.01)

    def test_unknown_op_rejected(self):
        def prog():
            yield "not-an-op"

        with pytest.raises(TypeError):
            run_program(prog())

    def test_run_twice_rejected(self):
        system = System(small_config())
        system.run()
        with pytest.raises(RuntimeError):
            system.run()


class TestTiming:
    def test_miss_waits_for_disk(self):
        def prog():
            yield BlockRead("data", 0)

        _, result = run_program(prog())
        assert result.proc("p").stats.io_wait_time > 0
        assert result.makespan > 0

    def test_hits_are_fast(self):
        def prog():
            yield BlockRead("data", 0)
            for _ in range(100):
                yield BlockRead("data", 0)

        _, result = run_program(prog())
        # 100 hits at hit_cpu (0.2 ms) ~ 20 ms; one miss dominates.
        assert result.makespan < 0.2

    def test_two_processes_share_cpu(self):
        def prog():
            yield Compute(1.0)

        system = System(small_config())
        system.spawn("a", prog())
        system.spawn("b", prog())
        result = system.run()
        assert result.makespan == pytest.approx(2.0)

    def test_processes_on_different_disks_overlap(self):
        def reader(path, n):
            def prog():
                for b in range(n):
                    yield BlockRead(path, b)

            return prog()

        def build(two_disks):
            system = System(MachineConfig(cache_mb=0.5, shared_bus=False))
            system.add_file("a", nblocks=50, disk="RZ56")
            system.add_file("b", nblocks=50, disk="RZ26" if two_disks else "RZ56")
            system.spawn("pa", reader("a", 50))
            system.spawn("pb", reader("b", 50))
            return system.run().makespan

        assert build(two_disks=True) < build(two_disks=False)

    def test_deterministic(self):
        def once():
            def prog():
                for b in range(30):
                    yield BlockRead("data", b % 10)
                    yield Compute(0.001)

            _, result = run_program(prog(), nblocks=10)
            return result.makespan, result.total_block_ios

        assert once() == once()


class TestReadahead:
    def test_sequential_scan_prefetches(self):
        def prog():
            for b in range(20):
                yield BlockRead("data", b)

        _, result = run_program(prog())
        assert result.cache.prefetches > 0

    def test_random_access_does_not_prefetch(self):
        def prog():
            for b in (0, 5, 2, 9, 4, 7):
                yield BlockRead("data", b)

        _, result = run_program(prog())
        assert result.cache.prefetches == 0

    def test_readahead_can_be_disabled(self):
        def prog():
            for b in range(20):
                yield BlockRead("data", b)

        _, result = run_program(prog(), config=small_config(readahead=False))
        assert result.cache.prefetches == 0

    def test_readahead_speeds_up_io_bound_scan(self):
        def make_prog():
            def prog():
                for b in range(200):
                    yield BlockRead("data", b)
                    yield Compute(0.004)

            return prog()

        def run(ra):
            _, r = run_program(make_prog(), nblocks=200, config=small_config(readahead=ra))
            return r.makespan

        assert run(True) < run(False)

    def test_prefetch_counts_as_block_io(self):
        def prog():
            for b in range(20):
                yield BlockRead("data", b)

        _, result = run_program(prog(), nblocks=20)
        # every one of the 20 blocks came off the disk exactly once
        # (the file ends at block 20, so read-ahead cannot overshoot)
        assert result.proc("p").stats.disk_reads == 20


class TestResults:
    def test_block_io_accounting_consistent(self):
        def prog():
            for b in range(30):
                yield BlockRead("data", b)

        system, result = run_program(prog(), nblocks=30)
        drive = system.drives["RZ56"]
        assert result.proc("p").stats.disk_reads == drive.stats.reads

    def test_disk_stats_exposed(self):
        _, result = run_program(iter(()))
        assert set(result.disk_stats) == {"RZ56", "RZ26"}

    def test_policy_name_recorded(self):
        _, result = run_program(iter(()), config=small_config(policy=GLOBAL_LRU))
        assert result.policy == "global-lru"

    def test_cache_frames_from_mb(self):
        assert MachineConfig(cache_mb=6.4).cache_frames == 819
        assert MachineConfig(cache_mb=16).cache_frames == 2048
