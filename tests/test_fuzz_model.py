"""Seeded differential fuzz of the LRU-SP kernel against a brute-force model.

Satellite of the fault-injection PR: thousands of short randomized
directive/access streams run through *two* implementations —

* the real kernel (:class:`repro.core.buffercache.BufferCache` under the
  LRU-SP allocation policy, with the runtime sanitizer attached), and
* :class:`ReferenceLruSp`, an independent brute-force re-implementation of
  the paper's Section-4 replacement procedure written with plain Python
  lists (no shared code, no linked lists, no indexes — just the rules).

After every operation the two are compared: hit/miss outcome, evicted
block, global LRU order, per-process occupancy and the headline counters.
On divergence the failing stream is greedily shrunk and the reproducing
seed + minimized operation list is printed, so a failure elsewhere can be
replayed with ``ReferenceLruSp`` as the oracle::

    python -m pytest tests/test_fuzz_model.py -k seed -q  # then paste the seed

Streams are generated from ``random.Random(seed)`` only — no time, no
global RNG — so every failure is reproducible from the printed seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

import pytest

from conftest import make_cache, touch
from repro.check.invariants import InvariantChecker
from repro.core.allocation import LRU_SP

BlockKey = Tuple[int, int]

QUICK_STREAMS = 150
FULL_STREAMS = 1000


# -- the brute-force reference model -------------------------------------


class _RefBlock:
    __slots__ = ("key", "owner", "pool_prio", "has_temp")

    def __init__(self, key: BlockKey, owner: int) -> None:
        self.key = key
        self.owner = owner
        self.pool_prio: Optional[int] = None
        self.has_temp = False


class _RefManager:
    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.file_prios: Dict[int, int] = {}
        self.policies: Dict[int, str] = {}
        self.pools: Dict[int, List[BlockKey]] = {}
        self.decisions = 0
        self.mistakes = 0

    def policy_of(self, prio: int) -> str:
        return self.policies.get(prio, "lru")

    def long_term(self, file_id: int) -> int:
        return self.file_prios.get(file_id, 0)

    def add_referenced(self, block: _RefBlock) -> None:
        prio = self.long_term(block.key[0])
        self.pools.setdefault(prio, []).append(block.key)
        block.pool_prio = prio

    def remove(self, block: _RefBlock) -> None:
        if block.pool_prio is not None:
            pool = self.pools.get(block.pool_prio)
            if pool is not None and block.key in pool:
                pool.remove(block.key)
        block.pool_prio = None
        block.has_temp = False

    def move(self, block: _RefBlock, prio: int) -> None:
        if block.pool_prio == prio:
            return
        if block.pool_prio is not None:
            pool = self.pools.get(block.pool_prio)
            if pool is not None and block.key in pool:
                pool.remove(block.key)
        dest = self.pools.setdefault(prio, [])
        if self.policy_of(prio) == "lru":
            dest.append(block.key)  # replaced-later end under LRU: MRU
        else:
            dest.insert(0, block.key)  # ... under MRU: LRU
        block.pool_prio = prio

    def touch(self, block: _RefBlock) -> None:
        if block.has_temp:
            block.has_temp = False
            if block.pool_prio is not None:
                pool = self.pools.get(block.pool_prio)
                if pool is not None and block.key in pool:
                    pool.remove(block.key)
            self.add_referenced(block)
            return
        if block.pool_prio is not None:
            pool = self.pools.get(block.pool_prio)
            if pool is not None and block.key in pool:
                pool.remove(block.key)
                pool.append(block.key)

    def pick_replacement(self) -> Optional[BlockKey]:
        for prio in sorted(self.pools):
            pool = self.pools[prio]
            if not pool:
                continue
            return pool[0] if self.policy_of(prio) == "lru" else pool[-1]
        return None


class ReferenceLruSp:
    """Brute-force LRU-SP: one flat list per structure, rules verbatim."""

    def __init__(self, nframes: int) -> None:
        self.nframes = nframes
        self.blocks: Dict[BlockKey, _RefBlock] = {}  # insertion = install order
        self.global_list: List[BlockKey] = []  # index 0 = LRU end
        self.managers: Dict[int, _RefManager] = {}
        # placeholder: replaced-block key -> (kept key, deciding manager)
        self.ph_by_missing: Dict[BlockKey, Tuple[BlockKey, int]] = {}
        self.ph_by_kept: Dict[BlockKey, Set[BlockKey]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.consultations = 0
        self.overrules = 0
        self.swaps = 0

    # -- manager lifecycle ------------------------------------------------

    def register(self, pid: int) -> _RefManager:
        m = self.managers.get(pid)
        if m is not None:
            return m
        m = _RefManager(pid)
        self.managers[pid] = m
        for block in list(self.blocks.values()):  # adopt in install order
            if block.owner == pid:
                m.add_referenced(block)
        return m

    # -- directives -------------------------------------------------------

    def set_priority(self, pid: int, file_id: int, prio: int) -> None:
        m = self.register(pid)
        if prio == 0:
            m.file_prios.pop(file_id, None)
        else:
            m.file_prios[file_id] = prio
        for block in self._file_blocks(file_id):
            if block.owner != pid or block.has_temp:
                continue
            m.move(block, prio)

    def set_policy(self, pid: int, prio: int, policy: str) -> None:
        self.register(pid).policies[prio] = policy

    def set_temppri(self, pid: int, file_id: int, start: int, end: int, prio: int) -> None:
        m = self.register(pid)
        for block in self._file_blocks(file_id):
            if block.owner != pid or not (start <= block.key[1] <= end):
                continue
            m.move(block, prio)
            block.has_temp = True

    # -- the access path --------------------------------------------------

    def access(self, pid: int, file_id: int, blockno: int) -> Tuple[bool, Optional[BlockKey]]:
        key = (file_id, blockno)
        block = self.blocks.get(key)
        if block is not None:
            self.hits += 1
            if block.owner != pid:
                self._transfer(block, pid)
            self.global_list.remove(key)
            self.global_list.append(key)
            m = self.managers.get(block.owner)
            if m is not None:
                m.touch(block)
            return True, None

        self.misses += 1
        evicted = None
        if len(self.blocks) >= self.nframes:
            evicted = self._replace(key)
        block = _RefBlock(key, pid)
        self.blocks[key] = block
        self.global_list.append(key)
        m = self.managers.get(pid)
        if m is not None:
            m.add_referenced(block)
        self._drop_placeholder(key)
        return False, evicted

    # -- Section 4: the replacement procedure -----------------------------

    def _replace(self, missing: BlockKey) -> BlockKey:
        candidate = None
        entry = self.ph_by_missing.pop(missing, None)
        if entry is not None:
            kept_key, manager_pid = entry
            self._unindex_kept(kept_key, missing)
            candidate = kept_key
            mgr = self.managers.get(manager_pid)
            if mgr is not None:
                mgr.mistakes += 1
        if candidate is None:
            candidate = self.global_list[0]

        self.consultations += 1
        chosen = candidate
        m = self.managers.get(self.blocks[candidate].owner)
        if m is not None:
            choice = m.pick_replacement()
            if choice is not None:
                if choice != candidate:
                    m.decisions += 1
                chosen = choice

        if chosen != candidate:
            self.overrules += 1
            ci, hi = self.global_list.index(candidate), self.global_list.index(chosen)
            self.global_list[ci], self.global_list[hi] = chosen, candidate
            self.swaps += 1
            self._drop_placeholder(chosen)  # a newer decision supersedes
            self.ph_by_missing[chosen] = (candidate, self.blocks[chosen].owner)
            self.ph_by_kept.setdefault(candidate, set()).add(chosen)

        self._evict(chosen)
        return chosen

    def _evict(self, key: BlockKey) -> None:
        self.evictions += 1
        block = self.blocks.pop(key)
        self.global_list.remove(key)
        m = self.managers.get(block.owner)
        if m is not None:
            m.remove(block)
        for missing in sorted(self.ph_by_kept.pop(key, ())):
            self.ph_by_missing.pop(missing, None)

    # -- helpers ----------------------------------------------------------

    def _file_blocks(self, file_id: int) -> List[_RefBlock]:
        return [b for b in self.blocks.values() if b.key[0] == file_id]

    def _transfer(self, block: _RefBlock, pid: int) -> None:
        old = self.managers.get(block.owner)
        if old is not None:
            old.remove(block)
        block.pool_prio = None
        block.has_temp = False
        block.owner = pid
        m = self.managers.get(pid)
        if m is not None:
            m.add_referenced(block)

    def _drop_placeholder(self, missing: BlockKey) -> None:
        entry = self.ph_by_missing.pop(missing, None)
        if entry is not None:
            self._unindex_kept(entry[0], missing)

    def _unindex_kept(self, kept: BlockKey, missing: BlockKey) -> None:
        kept_set = self.ph_by_kept.get(kept)
        if kept_set is not None:
            kept_set.discard(missing)
            if not kept_set:
                del self.ph_by_kept[kept]

    def occupancy(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for block in self.blocks.values():
            counts[block.owner] = counts.get(block.owner, 0) + 1
        return counts


# -- stream generation ----------------------------------------------------


def generate_stream(seed: int) -> Tuple[int, List[tuple]]:
    """A (nframes, ops) pair derived only from ``seed``."""
    rng = random.Random(seed)
    nframes = rng.randint(3, 8)
    ops: List[tuple] = []
    for _ in range(rng.randint(30, 60)):
        roll = rng.random()
        pid = rng.randint(1, 3)
        if roll < 0.70:
            ops.append(("access", pid, rng.randint(1, 3), rng.randint(0, 7), rng.random() < 0.3))
        elif roll < 0.82:
            ops.append(("prio", pid, rng.randint(1, 3), rng.randint(-1, 3)))
        elif roll < 0.92:
            start = rng.randint(0, 7)
            ops.append(("temp", pid, rng.randint(1, 3), start, rng.randint(start, 7), rng.randint(-1, 2)))
        else:
            ops.append(("policy", pid, rng.randint(-1, 3), rng.choice(["lru", "mru"])))
    return nframes, ops


# -- the differential harness ---------------------------------------------


def run_differential(nframes: int, ops: List[tuple]) -> Optional[str]:
    """Run ``ops`` through both implementations; the first divergence, or None."""
    cache = make_cache(nframes=nframes, policy=LRU_SP)
    if cache.sanitizer is None:  # REPRO_SANITIZE=1 already attached one
        InvariantChecker(cache)
    model = ReferenceLruSp(nframes)

    for step, op in enumerate(ops):
        if op[0] == "access":
            _, pid, fid, blk, write = op
            outcome = touch(cache, pid, fid, blk, write=write, whole=write)
            got = (outcome.hit, outcome.evicted.id if outcome.evicted else None)
            want = model.access(pid, fid, blk)
            if got != want:
                return f"step {step} {op}: kernel {got} != model {want}"
        elif op[0] == "prio":
            _, pid, fid, prio = op
            cache.acm.set_priority(pid, fid, prio)
            model.set_priority(pid, fid, prio)
        elif op[0] == "policy":
            _, pid, prio, policy = op
            cache.acm.set_policy(pid, prio, policy)
            model.set_policy(pid, prio, policy)
        else:
            _, pid, fid, start, end, prio = op
            cache.acm.set_temppri(pid, fid, start, end, prio)
            model.set_temppri(pid, fid, start, end, prio)

        real_order = [b.id for b in cache.global_list]
        if real_order != model.global_list:
            return f"step {step} {op}: global order {real_order} != {model.global_list}"
        if cache.occupancy() != model.occupancy():
            return f"step {step} {op}: occupancy {cache.occupancy()} != {model.occupancy()}"
        cache.check_invariants()

    s = cache.stats
    got_stats = (s.hits, s.misses, s.evictions, s.consultations, s.overrules, s.swaps)
    want_stats = (
        model.hits,
        model.misses,
        model.evictions,
        model.consultations,
        model.overrules,
        model.swaps,
    )
    if got_stats != want_stats:
        return f"stats (h,m,e,c,o,s): kernel {got_stats} != model {want_stats}"
    if len(cache.placeholders) != len(model.ph_by_missing):
        return (
            f"placeholders: kernel {len(cache.placeholders)}"
            f" != model {len(model.ph_by_missing)}"
        )
    for pid, m in model.managers.items():
        real = cache.acm.managers.get(pid)
        if real is None:
            return f"manager {pid} missing from kernel"
        real_pools = {p: [b.id for b in pool.blocks] for p, pool in real.pools.items() if len(pool)}
        want_pools = {p: keys for p, keys in m.pools.items() if keys}
        if real_pools != want_pools:
            return f"manager {pid} pools: kernel {real_pools} != model {want_pools}"
        if (real.decisions, real.mistakes) != (m.decisions, m.mistakes):
            return (
                f"manager {pid} decisions/mistakes: kernel"
                f" {(real.decisions, real.mistakes)} != model {(m.decisions, m.mistakes)}"
            )
    return None


def shrink(nframes: int, ops: List[tuple]) -> List[tuple]:
    """Greedy delta-debugging: drop chunks while the divergence persists."""
    chunk = max(1, len(ops) // 2)
    while chunk >= 1:
        i = 0
        while i < len(ops):
            trial = ops[:i] + ops[i + chunk:]
            if trial != ops and run_differential(nframes, trial) is not None:
                ops = trial
            else:
                i += chunk
        chunk //= 2
    return ops


def check_seed(seed: int) -> None:
    nframes, ops = generate_stream(seed)
    divergence = run_differential(nframes, ops)
    if divergence is None:
        return
    minimal = shrink(nframes, list(ops))
    final = run_differential(nframes, minimal)
    pytest.fail(
        f"kernel/model divergence (seed={seed}, nframes={nframes}): {final}\n"
        f"minimized stream ({len(minimal)} of {len(ops)} ops):\n"
        + "\n".join(f"  {op!r}" for op in minimal)
        + f"\nreplay: run_differential({nframes}, <ops above>)"
    )


# -- the battery ----------------------------------------------------------


class TestModelFuzz:
    def test_quick_battery(self):
        """A fast sweep that always runs (CI plain jobs, local -x -q)."""
        for seed in range(QUICK_STREAMS):
            check_seed(seed)

    @pytest.mark.slow
    def test_thousand_stream_battery(self):
        """The full battery of the issue: 1k seeded streams."""
        for seed in range(FULL_STREAMS):
            check_seed(seed)

    def test_known_tricky_streams(self):
        """Hand-picked shapes: placeholder fire, temp revert, MRU pools,
        ownership transfer — each exercises one Section-4 clause."""
        streams = [
            # Overrule then miss the replaced block: the placeholder fires.
            (2, [
                ("prio", 1, 1, 2),
                ("access", 1, 1, 0, False),
                ("access", 1, 2, 0, False),
                ("prio", 1, 2, 1),
                ("access", 1, 3, 0, False),
                ("access", 1, 2, 0, False),
            ]),
            # Temporary priority reverts on the next reference.
            (3, [
                ("prio", 2, 1, 3),
                ("access", 2, 1, 0, False),
                ("access", 2, 1, 1, True),
                ("temp", 2, 1, 0, 7, -1),
                ("access", 2, 1, 0, False),
                ("access", 2, 2, 0, False),
                ("access", 2, 2, 1, False),
            ]),
            # MRU pool policy: replacement comes from the other end.
            (3, [
                ("policy", 1, 0, "mru"),
                ("access", 1, 1, 0, False),
                ("access", 1, 1, 1, False),
                ("access", 1, 1, 2, False),
                ("access", 1, 1, 3, False),
            ]),
            # Ownership follows the last accessor across processes.
            (4, [
                ("prio", 1, 1, 1),
                ("prio", 2, 1, 2),
                ("access", 1, 1, 0, False),
                ("access", 2, 1, 0, False),
                ("access", 1, 2, 0, True),
                ("access", 2, 3, 0, False),
                ("access", 2, 3, 1, False),
            ]),
        ]
        for nframes, ops in streams:
            divergence = run_differential(nframes, ops)
            assert divergence is None, divergence

    def test_reference_model_is_plain_lru_when_oblivious(self):
        """With no directives the model must reduce to global LRU."""
        rng = random.Random(99)
        nframes = 4
        model = ReferenceLruSp(nframes)
        shadow: List[BlockKey] = []
        for _ in range(300):
            key = (rng.randint(1, 3), rng.randint(0, 5))
            hit, evicted = model.access(rng.randint(1, 3), key[0], key[1])
            assert hit == (key in shadow)
            if hit:
                shadow.remove(key)
            elif len(shadow) >= nframes:
                assert evicted == shadow.pop(0)
            shadow.append(key)
            assert model.global_list == shadow
