"""Unit tests of :mod:`repro.telemetry`: the registry, the tracer, the
exporters and the disabled-path cost contract."""

import io
import json

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Span,
    Telemetry,
    Tracer,
    render_prometheus,
    render_snapshot,
    telemetry_enabled,
)
from repro.telemetry.metrics import (
    Histogram,
    bucket_quantile,
    histogram_quantiles,
    quantile_label,
)


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "Hits.").inc()
        reg.counter("repro_hits_total").inc(2)
        assert reg.value("repro_hits_total") == 3

    def test_labelled_children_are_distinct(self):
        reg = MetricsRegistry()
        fam = reg.counter("repro_pid_ops_total", "Ops.", labels=("pid",))
        fam.labels(pid=1).inc()
        fam.labels(pid=2).inc(5)
        assert reg.value("repro_pid_ops_total", pid=1) == 1
        assert reg.value("repro_pid_ops_total", pid=2) == 5

    def test_redeclaring_with_other_type_fails(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")

    def test_redeclaring_with_other_labels_fails(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", labels=("pid",))
        with pytest.raises(ValueError):
            reg.counter("repro_x_total", labels=("disk",))

    def test_bad_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("not a metric name")

    def test_collectors_run_on_collect_only(self):
        reg = MetricsRegistry()
        calls = []
        reg.register_collector(lambda r: calls.append(1) or r.gauge("repro_g").set(7))
        assert calls == []
        reg.collect()
        assert calls == [1]
        assert reg.value("repro_g") == 7

    def test_gauge_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth")
        g.unlabelled.inc(3)
        g.unlabelled.dec()
        assert reg.value("repro_depth") == 2


class TestHistogram:
    def test_overflow_lands_in_inf_slot(self):
        h = Histogram((0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99.0)  # beyond every finite bound
        assert len(h.counts) == 3  # two bounds + the +Inf slot
        assert h.counts == [1, 1, 1]
        cum = h.cumulative()
        assert cum[-1] == (float("inf"), 3)
        assert h.sum == pytest.approx(99.55)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_default_latency_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestBucketQuantile:
    """The Prometheus-style estimator shared by ``repro-accfc metrics``
    and the load driver's latency report, on synthetic bucket layouts."""

    def test_interpolates_within_target_bucket(self):
        # cumulative counts: 50 samples in (0,1], 40 in (2,4], 10 in (8,+Inf]
        layout = [(1.0, 50), (2.0, 50), (4.0, 90), (8.0, 90), (float("inf"), 100)]
        # target rank 50 lands exactly on the first bucket's upper edge
        assert bucket_quantile(layout, 0.5) == pytest.approx(1.0)
        # rank 75 sits 25/40 of the way through the (2,4] bucket
        assert bucket_quantile(layout, 0.75) == pytest.approx(2.0 + 2.0 * 25 / 40)

    def test_first_bucket_interpolates_from_zero(self):
        layout = [(2.0, 100), (float("inf"), 100)]
        assert bucket_quantile(layout, 0.5) == pytest.approx(1.0)

    def test_inf_bucket_clamps_to_last_finite_bound(self):
        layout = [(1.0, 10), (float("inf"), 100)]
        assert bucket_quantile(layout, 0.99) == pytest.approx(1.0)

    def test_extremes_and_empty(self):
        layout = [(1.0, 4), (2.0, 8), (float("inf"), 8)]
        assert bucket_quantile(layout, 0.0) == pytest.approx(0.0)
        assert bucket_quantile(layout, 1.0) == pytest.approx(2.0)
        assert bucket_quantile([], 0.5) is None
        assert bucket_quantile([(1.0, 0), (float("inf"), 0)], 0.5) is None

    def test_q_validated(self):
        with pytest.raises(ValueError):
            bucket_quantile([(1.0, 1)], -0.1)
        with pytest.raises(ValueError):
            bucket_quantile([(1.0, 1)], 1.1)

    def test_accepts_histogram_and_snapshot_shapes(self):
        h = Histogram((1.0, 2.0, 4.0))
        for value in (0.5,) * 5 + (3.0,) * 5:
            h.observe(value)
        median = bucket_quantile(h, 0.5)
        assert median == pytest.approx(1.0)
        # the same layout as snapshot-style dicts with a "+Inf" string
        snapshot = [
            {"le": 1.0, "count": 5},
            {"le": 2.0, "count": 5},
            {"le": 4.0, "count": 10},
            {"le": "+Inf", "count": 10},
        ]
        assert bucket_quantile(snapshot, 0.5) == pytest.approx(median)
        assert h.quantile(0.5) == pytest.approx(median)

    def test_histogram_quantiles_labels(self):
        h = Histogram((1.0, 2.0))
        h.observe(0.5)
        qs = histogram_quantiles(h)
        assert set(qs) == {"p50", "p99"}
        assert quantile_label(0.5) == "p50"
        assert quantile_label(0.999) == "p99.9"

    def test_render_snapshot_carries_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_test_seconds", "t", buckets=(0.1, 1.0))
        h.labels().observe(0.05)
        snap = render_snapshot(reg)
        sample = snap["metrics"]["repro_test_seconds"]["samples"][0]
        assert "quantiles" in sample
        assert sample["quantiles"]["p50"] is not None


class TestPrometheusExposition:
    def test_counter_and_histogram_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "Cache hits.").inc(4)
        fam = reg.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        fam.observe(0.05)
        fam.observe(50.0)
        text = render_prometheus(reg)
        assert "# HELP repro_hits_total Cache hits." in text
        assert "# TYPE repro_hits_total counter" in text
        assert "repro_hits_total 4" in text
        assert '_bucket{le="0.1"} 1' in text
        assert '_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("repro_g", labels=("path",)).labels(path='a"b\\c\n').set(1)
        text = render_prometheus(reg)
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_hits_total", "Hits.").inc()
        snap = render_snapshot(reg, Tracer())
        assert snap["metrics"]["repro_hits_total"]["type"] == "counter"
        assert snap["tracing"]["finished"] == 0


class TestTracer:
    def test_trace_id_propagates_to_children(self):
        tr = Tracer()
        root = tr.begin("server.request", trace_id="7:42")
        child = tr.begin("buf.access")
        assert child.trace_id == "7:42"
        assert child.parent_id == root.span_id
        tr.finish(child)
        tr.finish(root)
        assert [r["name"] for r in tr.trace("7:42")] == ["buf.access", "server.request"]

    def test_annotate_without_span_is_noop(self):
        tr = Tracer()
        tr.annotate("fault.disk", kind="error")  # must not raise
        assert tr.records() == []

    def test_ring_buffer_bounds_and_drop_counter(self):
        tr = Tracer(capacity=4)
        for i in range(10):
            tr.finish(tr.begin(f"op{i}"))
        assert len(tr.records()) == 4
        assert tr.dropped == 6
        assert tr.stats()["retained"] == 4
        # Oldest dropped first: the survivors are the last four.
        assert [r["name"] for r in tr.records()] == ["op6", "op7", "op8", "op9"]

    def test_jsonl_sink_gets_one_object_per_line(self):
        sink = io.StringIO()
        tr = Tracer(sink=sink)
        span = tr.begin("kernel.read", pid=3)
        span.event("fault.disk", kind="error")
        tr.finish(span, ok=False)
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "kernel.read"
        assert record["attrs"]["ok"] is False
        assert record["events"][0]["name"] == "fault.disk"

    def test_finish_unwinds_surprised_stack(self):
        tr = Tracer()
        outer = tr.begin("outer")
        tr.begin("inner")  # never finished — e.g. an exception path
        tr.finish(outer)
        assert tr.current is None


class TestDisabledFastPath:
    def test_disabled_system_allocates_no_spans(self, monkeypatch):
        """The no-telemetry hot path must not construct Span objects."""
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        from repro.kernel.system import MachineConfig, System
        from repro.workloads.readn import ReadN, ReadNBehavior

        system = System(MachineConfig(cache_mb=0.25))
        assert system.telemetry is None
        ReadN(n=8, file_blocks=24, repeats=2, behavior=ReadNBehavior.SMART).spawn(system)
        before = Span.allocations
        system.run()
        assert Span.allocations == before

    def test_metrics_without_tracer_allocate_no_spans(self):
        tel = Telemetry()  # registry only, no tracer
        before = Span.allocations
        assert tel.span("buf.access") is None
        tel.end(None)
        tel.annotate("fault.disk")
        assert Span.allocations == before

    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        assert not telemetry_enabled()
        monkeypatch.setenv("REPRO_TELEMETRY", "1")
        assert telemetry_enabled()


class TestSystemIntegration:
    def test_enabled_system_exports_cache_and_disk_metrics(self):
        from repro.kernel.system import MachineConfig, System
        from repro.workloads.readn import ReadN, ReadNBehavior

        system = System(MachineConfig(cache_mb=0.25, telemetry=True))
        assert system.telemetry is not None
        ReadN(n=8, file_blocks=64, repeats=2, behavior=ReadNBehavior.SMART).spawn(system)
        result = system.run()
        reg = system.telemetry.registry
        assert reg.value("repro_cache_accesses_total", refresh=True) == system.cache.stats.accesses
        assert reg.value("repro_cache_misses_total") == system.cache.stats.misses
        assert reg.value("repro_disk_reads_total", disk="RZ56") > 0
        # The per-disk service-time histogram saw every transfer.
        text = system.telemetry.prometheus()
        assert 'repro_disk_service_seconds_bucket{disk="RZ56",le="+Inf"}' in text
        assert result.telemetry is not None
        assert "repro_cache_accesses_total" in result.telemetry["metrics"]

    def test_session_counters_view_round_trips(self):
        from repro.server.stats import SessionCounters

        reg = MetricsRegistry()
        counters = SessionCounters(reg, pid=7)
        counters.inc("accesses")
        counters.inc("hits")
        counters.accesses += 1  # historical += form still works
        assert counters.accesses == 2
        assert counters.hit_ratio == 0.5
        assert reg.value("repro_session_accesses_total", pid=7) == 2
        d = counters.as_dict()
        assert d["accesses"] == 2 and d["hits"] == 1 and d["block_ios"] == 0
