"""Satellite: interleaved directives under eviction pressure.

Two sessions hammer a 16-frame cache — one protects a hot file with
``set_priority``/``set_policy`` while the other streams a large file and a
scratch write set with ``set_temppri`` free-behind — so evictions,
write-backs and pool swaps all happen while requests interleave.

Correctness argument: the daemon records the *actual arrival order* it
applied (a :class:`repro.trace.TraceRecorder` hangs off the service), and
replaying that trace through :func:`repro.trace.driver.replay` — the
single-driver reference implementation — must reproduce every per-client
counter and the final per-process frame allocation exactly, with the
runtime sanitizer finding nothing.  Whatever order asyncio produced, the
shared cache processed it as one serial reference stream.
"""

import asyncio

from repro.server import CacheClient, CacheDaemon, build_config
from repro.trace import TraceRecorder
from repro.trace.driver import replay

CACHE_MB = 0.125  # 16 frames: far smaller than the working sets below


async def _hot_reader(client):
    """Protect 12 blocks with the paper's directives, then cycle them."""
    await client.open("hot", size_blocks=12)
    await client.set_priority("hot", 0)
    await client.set_policy(0, "mru")
    for rep in range(4):
        for b in range(12):
            await client.read("hot", b)
        await client.set_temppri("hot", 0, 5, 1)  # demote half, mid-run
        await client.set_temppri("hot", 0, 5, 0)  # and reclaim it


async def _scanner(client):
    """Eviction pressure: a 40-block scan plus rewritten scratch blocks."""
    await client.open("cold", size_blocks=40)
    await client.open("scratch", size_blocks=10)
    await client.set_priority("cold", 1)
    for rep in range(2):
        for b in range(40):
            await client.read("cold", b)
            await client.set_temppri("cold", b, b, -1)  # free-behind
            if b % 4 == 0:
                await client.write("scratch", (b // 4) % 10, whole=True)


async def _run_daemon():
    recorder = TraceRecorder()
    daemon = CacheDaemon(
        build_config(cache_mb=CACHE_MB, sanitize=True), trace_recorder=recorder
    )
    hot = await CacheClient.connect_inproc(daemon, name="hot")
    cold = await CacheClient.connect_inproc(daemon, name="cold")
    await asyncio.gather(_hot_reader(hot), _scanner(cold))
    await hot.aclose()
    await cold.aclose()
    await daemon.aclose()  # final flush: replay counts it too
    daemon.service.cache.sanitizer.check_now("final")
    assert daemon.errors == []
    counters = {
        pid: daemon.service.counters_for(pid).as_dict()
        for pid in sorted(daemon.service.counters)
    }
    occupancy = dict(daemon.service.cache.occupancy())
    stats = daemon.service.cache.stats
    return recorder, counters, occupancy, stats


def test_interleaved_sessions_match_single_driver_replay():
    recorder, counters, occupancy, cache_stats = asyncio.run(_run_daemon())
    assert sorted(counters) == [1, 2]
    assert cache_stats.evictions > 0, "workload was meant to thrash"
    assert counters[2]["disk_writes"] > 0, "scratch write-backs expected"

    nframes = int(CACHE_MB * 1024 * 1024) // 8192
    reference = replay(recorder.events, nframes=nframes, count_final_flush=True)

    for pid in (1, 2):
        entry = counters[pid]
        ref = reference.per_pid[pid]
        assert entry["accesses"] == ref["accesses"], pid
        assert entry["hits"] == ref["hits"], pid
        assert entry["misses"] == ref["misses"], pid
        assert entry["disk_reads"] == ref["reads"], pid
        assert entry["disk_writes"] == ref["writes"], pid
    # The allocation decisions (who holds how many frames) replayed exactly.
    assert occupancy == reference.occupancy


def test_replay_is_deterministic_for_a_fixed_trace():
    recorder, _, _, _ = asyncio.run(_run_daemon())
    nframes = int(CACHE_MB * 1024 * 1024) // 8192
    first = replay(recorder.events, nframes=nframes)
    second = replay(recorder.events, nframes=nframes)
    assert first.per_pid == second.per_pid
    assert first.occupancy == second.occupancy
    assert first.block_ios == second.block_ios
