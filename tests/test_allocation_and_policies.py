"""Allocation-policy presets, pool-policy parsing, block/opt helpers."""

import pytest

from repro.core.allocation import (
    ALLOC_LRU,
    GLOBAL_LRU,
    LRU_S,
    LRU_SP,
    AllocationPolicy,
    policy_by_name,
)
from repro.core.blocks import CacheBlock
from repro.core.opt import lru_misses, mru_misses, opt_misses
from repro.core.policies import DEFAULT_POLICY, PoolPolicy


class TestAllocationPresets:
    def test_global_lru_flags(self):
        assert not GLOBAL_LRU.consult
        assert not GLOBAL_LRU.swapping
        assert not GLOBAL_LRU.placeholders

    def test_alloc_lru_flags(self):
        assert ALLOC_LRU.consult
        assert not ALLOC_LRU.swapping and not ALLOC_LRU.placeholders

    def test_lru_s_flags(self):
        assert LRU_S.consult and LRU_S.swapping and not LRU_S.placeholders

    def test_lru_sp_flags(self):
        assert LRU_SP.consult and LRU_SP.swapping and LRU_SP.placeholders

    def test_lookup_by_name(self):
        assert policy_by_name("lru-sp") is LRU_SP
        assert policy_by_name("GLOBAL-LRU") is GLOBAL_LRU

    def test_lookup_unknown(self):
        with pytest.raises(ValueError):
            policy_by_name("mystery")

    def test_inconsistent_flags_rejected(self):
        with pytest.raises(ValueError):
            AllocationPolicy("bad", consult=False, swapping=True, placeholders=False)

    def test_str(self):
        assert str(LRU_SP) == "lru-sp"


class TestPoolPolicy:
    def test_parse_strings(self):
        assert PoolPolicy.parse("lru") is PoolPolicy.LRU
        assert PoolPolicy.parse("MRU") is PoolPolicy.MRU

    def test_parse_passthrough(self):
        assert PoolPolicy.parse(PoolPolicy.MRU) is PoolPolicy.MRU

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            PoolPolicy.parse("clock")

    def test_default_is_lru(self):
        assert DEFAULT_POLICY is PoolPolicy.LRU


class TestCacheBlock:
    def test_id(self):
        assert CacheBlock(3, 7).id == (3, 7)

    def test_initial_state(self):
        b = CacheBlock(1, 0)
        assert not b.dirty and not b.in_flight and not b.has_temp
        assert b.resident
        assert b.waiters == []


class TestOfflineOpt:
    def test_opt_on_cyclic_beats_lru(self):
        trace = list(range(10)) * 5
        assert opt_misses(trace, 5) < lru_misses(trace, 5)

    def test_lru_cyclic_all_miss(self):
        trace = list(range(10)) * 5
        assert lru_misses(trace, 5) == 50

    def test_mru_cyclic_near_optimal(self):
        trace = list(range(10)) * 5
        assert mru_misses(trace, 5) <= opt_misses(trace, 5) * 1.5

    def test_opt_lower_bound_property(self):
        trace = [1, 2, 3, 1, 2, 4, 1, 5, 2, 3]
        for size in (1, 2, 3, 4):
            o = opt_misses(trace, size)
            assert o <= lru_misses(trace, size)
            assert o <= mru_misses(trace, size)

    def test_all_fit_only_compulsory(self):
        trace = [1, 2, 3] * 4
        assert opt_misses(trace, 3) == 3
        assert lru_misses(trace, 3) == 3
        assert mru_misses(trace, 3) == 3

    def test_empty_trace(self):
        assert opt_misses([], 4) == 0
        assert lru_misses([], 4) == 0

    def test_single_frame(self):
        trace = [1, 2, 1, 2]
        assert opt_misses(trace, 1) == 4

    def test_bad_cache_size(self):
        with pytest.raises(ValueError):
            opt_misses([1], 0)
        with pytest.raises(ValueError):
            lru_misses([1], 0)
        with pytest.raises(ValueError):
            mru_misses([1], 0)

    def test_opt_classic_example(self):
        # Belady's example-style check with known answer.
        trace = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        assert opt_misses(trace, 3) == 7
        assert lru_misses(trace, 3) == 10
