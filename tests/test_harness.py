"""Harness: runner specs, report formatting, CLI plumbing."""

import pytest

from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.harness import paperdata, report
from repro.harness.cli import main
from repro.harness.experiments import MixResult, SingleAppResult, Table1Cell
from repro.harness.runner import AppSpec, app, run_mix, run_single


class TestAppSpec:
    def test_app_shorthand(self):
        spec = app("din", smart=False, trace_blocks=10)
        assert spec.kind == "din"
        assert not spec.smart
        assert dict(spec.kwargs) == {"trace_blocks": 10}

    def test_build_produces_fresh_instances(self):
        spec = app("din", trace_blocks=10, passes=1, cpu_per_block=0.0)
        a, b = spec.build(), spec.build()
        assert a is not b
        assert a.trace_blocks == 10

    def test_specs_hashable(self):
        assert hash(app("din", trace_blocks=10)) == hash(app("din", trace_blocks=10))

    def test_display_name(self):
        assert app("din").display_name == "din"
        assert app("din", name="d2").display_name == "d2"


class TestRunner:
    def test_run_single(self):
        result = run_single(
            "din", cache_mb=0.5, policy=GLOBAL_LRU, smart=False,
            trace_blocks=20, passes=2, cpu_per_block=0.0,
        )
        assert result.proc("din").stats.accesses == 40

    def test_run_mix_namespaces_files(self):
        result = run_mix(
            [
                app("din", name="a", trace_blocks=10, passes=1, cpu_per_block=0.0),
                app("din", name="b", trace_blocks=10, passes=1, cpu_per_block=0.0),
            ],
            cache_mb=0.5,
        )
        assert set(result.procs) == {"a", "b"}

    def test_config_kwargs_forwarded(self):
        result = run_mix(
            [app("din", smart=False, trace_blocks=10, passes=1, cpu_per_block=0.0)],
            cache_mb=0.5,
            policy=GLOBAL_LRU,
            readahead=False,
        )
        assert result.cache.prefetches == 0


class TestResultTypes:
    def test_single_app_ratios(self):
        r = SingleAppResult("din", 6.4, orig_elapsed=100, orig_ios=1000, sp_elapsed=50, sp_ios=300)
        assert r.elapsed_ratio == 0.5
        assert r.io_ratio == 0.3

    def test_mix_ratios(self):
        r = MixResult("a+b", 6.4, base_elapsed=10, base_ios=100, test_elapsed=12, test_ios=110)
        assert r.elapsed_ratio == pytest.approx(1.2)
        assert r.io_ratio == pytest.approx(1.1)


class TestReport:
    def _fig4_data(self):
        return {
            "din": {
                6.4: SingleAppResult("din", 6.4, 100, 1000, 90, 290),
                8.0: SingleAppResult("din", 8.0, 99, 998, 99, 1003),
            }
        }

    def test_render_fig4_contains_ratios(self):
        text = report.render_fig4(self._fig4_data())
        assert "din" in text
        assert "0.29" in text  # io ratio at 6.4

    def test_render_table56(self):
        text = report.render_table56(self._fig4_data(), "ios")
        assert "original" in text and "lru-sp" in text
        text = report.render_table56(self._fig4_data(), "elapsed")
        assert "0.90" in text

    def test_render_table56_bad_metric(self):
        with pytest.raises(ValueError):
            report.render_table56(self._fig4_data(), "joules")

    def test_render_mixes(self):
        data = {
            "a+b": {
                6.4: MixResult("a+b", 6.4, 10, 100, 9, 90),
            }
        }
        text = report.render_mixes(data, "Figure 5")
        assert "Figure 5" in text and "0.90" in text

    def test_render_table1(self):
        cells = {
            setting: {n: Table1Cell(setting, n, 50.0, 1200) for n in (390, 400, 490, 500)}
            for setting in ("oblivious", "unprotected", "protected")
        }
        text = report.render_table1(cells)
        assert "unprotected" in text
        assert "1200" in text

    def test_render_ablation(self):
        text = report.render_ablation({"lru-sp": (10.0, 100)}, "title")
        assert "title" in text and "lru-sp" in text


class TestCli:
    def test_cli_runs_small_fig4(self, capsys):
        rc = main(["fig4", "--apps", "din", "--sizes", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "din" in out and "fig4" in out

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_cli_check_is_clean(self, capsys):
        rc = main(["check"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro-lint: clean" in out
        assert "sanitizer: clean" in out

    def test_cli_check_fails_on_findings(self, capsys, monkeypatch):
        from repro.check.lint import Finding
        from repro.harness import cli

        monkeypatch.setattr(
            cli, "_run_check", lambda args: (_ for _ in ()).throw(
                cli._CheckFailed("repro/core/x.py:1: R002 wall clock")
            )
        )
        monkeypatch.setitem(cli._EXPERIMENTS, "check", cli._run_check)
        rc = cli.main(["check"])
        assert rc == 1
        assert "R002" in capsys.readouterr().out

    def test_paperdata_shapes(self):
        for table in (paperdata.PAPER_ELAPSED, paperdata.PAPER_BLOCK_IOS):
            assert set(table) == set(paperdata.APP_ORDER)
            for entry in table.values():
                assert len(entry["original"]) == 4
                assert len(entry["lru-sp"]) == 4

    def test_readn_file_sizes_match_table(self):
        assert set(paperdata.READN_FILE_BLOCKS) == {300, 390, 400, 490, 500}


class TestAsciiChart:
    def test_basic_render(self):
        text = report.ascii_chart({"a": [0.0, 0.5, 1.0]}, labels=["x", "y", "z"], hi=1.0)
        lines = text.splitlines()
        assert lines[0].startswith("   1.00 |")
        assert "legend: * a" in text

    def test_extremes_land_on_edge_rows(self):
        text = report.ascii_chart({"a": [0.0, 1.0]}, labels=["p", "q"], hi=1.0, height=5)
        lines = text.splitlines()
        assert "*" in lines[0]      # the 1.0 point on the top row
        assert "*" in lines[4]      # the 0.0 point on the bottom row

    def test_multiple_series_get_distinct_markers(self):
        text = report.ascii_chart(
            {"a": [0.2, 0.2], "b": [0.8, 0.8]}, labels=["p", "q"], hi=1.0
        )
        assert "* a" in text and "o b" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            report.ascii_chart({"a": [1.0]}, labels=["x", "y"])

    def test_empty_series(self):
        assert report.ascii_chart({}, labels=[]) == "(no data)"

    def test_auto_scale(self):
        text = report.ascii_chart({"a": [10.0, 20.0]}, labels=["p", "q"])
        assert text.splitlines()[0].startswith("  20.00")

    def test_values_clamped_to_range(self):
        text = report.ascii_chart({"a": [5.0]}, labels=["x"], hi=1.0)
        assert "*" in text.splitlines()[0]
