"""The trace package: record → serialise → parse → replay."""

import io

import pytest

from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.core.opt import lru_misses
from repro.sim.ops import BlockRead, BlockWrite, Compute, CreateFile, DeleteFile, Fork
from repro.trace import (
    AccessRecord,
    DirectiveRecord,
    analyze_trace,
    read_trace,
    replay,
    write_trace,
)
from repro.trace.format import TraceFormatError
from repro.trace.recorder import record_program, record_workload
from repro.workloads import Dinero
from repro.workloads.base import set_policy, set_priority, set_temppri


def simple_trace():
    return [
        DirectiveRecord(1, "set_policy", (0, "mru")),
        AccessRecord(1, "f", 0),
        AccessRecord(1, "f", 1, write=True, whole=True),
        AccessRecord(1, "f", 2, write=True, whole=False),
        DirectiveRecord(1, "delete", ("f",)),
    ]


class TestEvents:
    def test_access_validation(self):
        with pytest.raises(ValueError):
            AccessRecord(1, "f", -1)

    def test_records_hashable_and_equal(self):
        assert AccessRecord(1, "f", 0) == AccessRecord(1, "f", 0)
        assert DirectiveRecord(1, "set_policy", (0, "mru")) == DirectiveRecord(
            1, "set_policy", (0, "mru")
        )


class TestFormat:
    def test_roundtrip(self):
        text = write_trace(simple_trace())
        assert read_trace(text) == simple_trace()

    def test_header_and_kinds(self):
        text = write_trace(simple_trace())
        lines = text.splitlines()
        assert lines[0].startswith("# repro-trace")
        assert any(line.startswith("A 1 r 0") for line in lines)
        assert any(line.startswith("A 1 W 1") for line in lines)
        assert any(line.startswith("A 1 w 2") for line in lines)

    def test_write_to_stream(self):
        buf = io.StringIO()
        write_trace(simple_trace(), buf)
        buf.seek(0)
        assert read_trace(buf) == simple_trace()

    def test_write_to_path(self, tmp_path):
        path = str(tmp_path / "t.trace")
        write_trace(simple_trace(), path)
        with open(path) as f:
            assert read_trace(f) == simple_trace()

    def test_comments_and_blank_lines_ignored(self):
        text = "# hello\n\nA 1 r 0 f\n   \n# bye\n"
        assert read_trace(text) == [AccessRecord(1, "f", 0)]

    def test_integer_directive_args_parse_as_ints(self):
        events = read_trace("D 1 set_temppri f 3 5 -1\n")
        assert events[0].args == ("f", 3, 5, -1)

    def test_malformed_lines_rejected(self):
        with pytest.raises(TraceFormatError):
            read_trace("A 1 r\n")
        with pytest.raises(TraceFormatError):
            read_trace("X 1 2 3\n")
        with pytest.raises(TraceFormatError):
            read_trace("A 1 z 0 f\n")

    def test_non_event_rejected_on_write(self):
        with pytest.raises(TypeError):
            write_trace(["nope"])


class TestRecorder:
    def test_records_reads_and_writes(self):
        def prog():
            yield BlockRead("f", 0)
            yield Compute(1.0)
            yield BlockWrite("f", 1, whole=True)

        events = record_program(prog())
        assert events == [
            AccessRecord(1, "f", 0),
            AccessRecord(1, "f", 1, write=True, whole=True),
        ]

    def test_records_directives_with_names(self):
        def prog():
            yield set_priority("f", 2)
            yield set_policy(0, "mru")
            yield set_temppri("f", 0, 0, -1)

        ops = [ev.op for ev in record_program(prog())]
        assert ops == ["set_priority", "set_policy", "set_temppri"]

    def test_records_create_delete(self):
        def prog():
            yield CreateFile("tmp", size_hint=4)
            yield DeleteFile("tmp")

        events = record_program(prog())
        assert events[0].op == "create"
        assert events[1].op == "delete"

    def test_fork_children_get_distinct_pids(self):
        def child():
            yield BlockRead("c", 0)

        def prog():
            yield Fork("kid", child())
            yield BlockRead("p", 0)

        events = record_program(prog())
        pids = {ev.pid for ev in events}
        assert len(pids) == 2

    def test_record_workload_matches_op_count(self):
        din = Dinero(trace_blocks=10, passes=2)
        events = record_workload(din)
        accesses = [ev for ev in events if isinstance(ev, AccessRecord)]
        assert len(accesses) == 20


class TestReplay:
    def test_replay_counts(self):
        events = [AccessRecord(1, "f", b % 3) for b in range(9)]
        result = replay(events, nframes=3, policy=GLOBAL_LRU)
        assert result.accesses == 9
        assert result.misses == 3
        assert result.hits == 6

    def test_replay_matches_reference_lru(self):
        events = [AccessRecord(1, "f", (b * 7) % 13) for b in range(200)]
        result = replay(events, nframes=5, policy=GLOBAL_LRU)
        refs = [("f", (b * 7) % 13) for b in range(200)]
        assert result.misses == lru_misses(refs, 5)

    def test_directives_affect_replay(self):
        scan = [AccessRecord(1, "f", b) for b in range(10)] * 3
        plain = replay(scan, nframes=5, policy=LRU_SP)
        smart = replay(
            [DirectiveRecord(1, "set_policy", (0, "mru"))] + scan,
            nframes=5,
            policy=LRU_SP,
        )
        assert smart.misses < plain.misses

    def test_dirty_final_flush_counted(self):
        events = [AccessRecord(1, "f", b, write=True, whole=True) for b in range(3)]
        with_flush = replay(events, nframes=8, count_final_flush=True)
        without = replay(events, nframes=8, count_final_flush=False)
        assert with_flush.disk_writes == 3
        assert without.disk_writes == 0

    def test_delete_discards_dirty(self):
        events = [
            AccessRecord(1, "tmp", 0, write=True, whole=True),
            DirectiveRecord(1, "delete", ("tmp",)),
        ]
        result = replay(events, nframes=8)
        assert result.disk_writes == 0

    def test_whole_write_miss_needs_no_read(self):
        events = [AccessRecord(1, "f", 0, write=True, whole=True)]
        result = replay(events, nframes=4, count_final_flush=False)
        assert result.misses == 1
        assert result.disk_reads == 0

    def test_per_pid_breakdown(self):
        events = [AccessRecord(1, "a", 0), AccessRecord(2, "b", 0), AccessRecord(2, "b", 0)]
        result = replay(events, nframes=8)
        assert result.per_pid[1]["accesses"] == 1
        assert result.per_pid[2]["hits"] == 1

    def test_replay_records_placeholder_activity(self):
        din = Dinero(trace_blocks=20, passes=3)
        events = record_workload(din)
        result = replay(events, nframes=10, policy=LRU_SP)
        assert result.overrules > 0


class TestAnalyze:
    def test_bounds_ordering(self):
        din = Dinero(trace_blocks=20, passes=4)
        events = record_workload(din)
        analysis = analyze_trace(events, nframes=10)
        assert analysis["opt"] <= analysis["lru_sp"] <= analysis["lru"]
        # MRU is the right policy for this trace, so LRU-SP (with the MRU
        # directive in the trace) tracks the plain-MRU bound closely.
        assert analysis["lru_sp"] <= analysis["mru"] * 1.2

    def test_full_workload_roundtrip_through_text(self):
        din = Dinero(trace_blocks=15, passes=2)
        events = record_workload(din)
        text = write_trace(events)
        again = read_trace(text)
        a = replay(events, nframes=8)
        b = replay(again, nframes=8)
        assert (a.misses, a.hits, a.block_ios) == (b.misses, b.hits, b.block_ios)
