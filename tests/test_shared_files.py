"""Concurrently shared files (the paper's future-work item, implemented)."""

import pytest

from conftest import make_cache, touch
from repro.core.acm import ACM
from repro.core.allocation import LRU_SP


@pytest.fixture
def shared_env():
    acm = ACM()
    cache = make_cache(nframes=8, policy=LRU_SP, acm=acm)
    return cache, acm


class TestDesignation:
    def test_default_ownership_follows_accessor(self, shared_env):
        cache, acm = shared_env
        touch(cache, 1, 5, 0)
        touch(cache, 2, 5, 0)
        assert cache.peek(5, 0).owner_pid == 2

    def test_designated_manager_keeps_ownership(self, shared_env):
        cache, acm = shared_env
        acm.share_file(5, manager_pid=1)
        touch(cache, 1, 5, 0)
        touch(cache, 2, 5, 0)
        touch(cache, 3, 5, 0)
        assert cache.peek(5, 0).owner_pid == 1

    def test_foreign_load_homes_to_designated_manager(self, shared_env):
        cache, acm = shared_env
        acm.share_file(5, manager_pid=1)
        touch(cache, 2, 5, 0)  # pid 2 faults the block in
        block = cache.peek(5, 0)
        assert block.owner_pid == 1
        assert block in acm.managers[1].pools[0].blocks

    def test_designation_adopts_resident_blocks(self, shared_env):
        cache, acm = shared_env
        touch(cache, 2, 5, 0)
        touch(cache, 2, 5, 1)
        acm.share_file(5, manager_pid=1)
        for block in cache.blocks_of_file(5):
            assert block.owner_pid == 1

    def test_unshare_restores_transfer(self, shared_env):
        cache, acm = shared_env
        acm.share_file(5, manager_pid=1)
        touch(cache, 1, 5, 0)
        acm.unshare_file(5)
        touch(cache, 2, 5, 0)
        assert cache.peek(5, 0).owner_pid == 2

    def test_shared_manager_of(self, shared_env):
        cache, acm = shared_env
        acm.share_file(5, manager_pid=1)
        assert acm.shared_manager_of(5) == 1
        assert acm.shared_manager_of(6) is None

    def test_private_files_unaffected(self, shared_env):
        cache, acm = shared_env
        acm.share_file(5, manager_pid=1)
        touch(cache, 2, 7, 0)  # a different, private file
        assert cache.peek(7, 0).owner_pid == 2

    def test_invariants_hold_with_sharing(self, shared_env):
        cache, acm = shared_env
        acm.share_file(5, manager_pid=1)
        acm.set_policy(1, 0, "mru")
        for i in range(60):
            touch(cache, 1 + (i % 3), 5, i % 12)
            cache.check_invariants()


class TestSharedSemantics:
    def test_designated_policy_governs_shared_scans(self):
        """Two processes cyclically scanning one shared file benefit from
        the designated manager's MRU policy — without the designation,
        ownership ping-pong keeps re-pooling blocks and each process's
        manager sees only a fragment of the file."""

        def run(designated: bool) -> int:
            acm = ACM()
            cache = make_cache(nframes=10, policy=LRU_SP, acm=acm)
            acm.register(1)
            acm.set_policy(1, 0, "mru")
            if designated:
                acm.share_file(5, manager_pid=1)
            misses = 0
            for _ in range(4):            # alternating cyclic scans
                for pid in (1, 2):
                    for b in range(16):
                        if not touch(cache, pid, 5, b).hit:
                            misses += 1
            return misses

        assert run(designated=True) <= run(designated=False)

    def test_sharing_keeps_oblivious_neighbours_safe(self):
        acm = ACM()
        cache = make_cache(nframes=8, policy=LRU_SP, acm=acm)
        acm.share_file(5, manager_pid=1)
        acm.set_policy(1, 0, "mru")
        # An oblivious pid 3 with a private file coexists untouched.
        for i in range(40):
            touch(cache, 2, 5, i % 10)
            touch(cache, 3, 9, i % 3)
            cache.check_invariants()
        assert cache.per_pid[3].hits > 0

    def test_vm_pool_honours_sharing(self):
        from repro.vm import ClockPagePool

        pool = ClockPagePool(8, policy=LRU_SP)
        pool.acm.share_file(5, manager_pid=1)
        pool.access(2, 5, 0)
        assert pool.peek(5, 0).owner_pid == 1
        pool.access(3, 5, 0)
        assert pool.peek(5, 0).owner_pid == 1
        pool.check_invariants()
