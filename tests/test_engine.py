"""The discrete-event engine: ordering, cancellation, clock discipline."""

import pytest

from repro.sim.engine import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_after_advances_clock(self):
        eng = Engine()
        eng.after(2.5, lambda: None)
        eng.run()
        assert eng.now == 2.5

    def test_at_absolute_time(self):
        eng = Engine()
        fired = []
        eng.at(3.0, fired.append, "x")
        eng.run()
        assert fired == ["x"]
        assert eng.now == 3.0

    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.after(2.0, order.append, "late")
        eng.after(1.0, order.append, "early")
        eng.run()
        assert order == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.after(1.0, order.append, i)
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_scheduling_in_past_rejected(self):
        eng = Engine()
        eng.after(5.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().after(-1.0, lambda: None)

    def test_zero_delay_allowed(self):
        eng = Engine()
        fired = []
        eng.after(0.0, fired.append, 1)
        eng.run()
        assert fired == [1]

    def test_callbacks_can_schedule_more(self):
        eng = Engine()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                eng.after(1.0, chain, n + 1)

        eng.after(1.0, chain, 0)
        eng.run()
        assert seen == [0, 1, 2, 3]
        assert eng.now == 4.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        ev = eng.after(1.0, fired.append, "no")
        ev.cancel()
        eng.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        ev = eng.after(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        eng.run()

    def test_cancel_does_not_block_others(self):
        eng = Engine()
        fired = []
        eng.after(1.0, fired.append, "a").cancel()
        eng.after(1.0, fired.append, "b")
        eng.run()
        assert fired == ["b"]


class TestRunControl:
    def test_run_until_stops_clock_there(self):
        eng = Engine()
        fired = []
        eng.after(1.0, fired.append, 1)
        eng.after(10.0, fired.append, 2)
        eng.run(until=5.0)
        assert fired == [1]
        assert eng.now == 5.0
        eng.run()
        assert fired == [1, 2]

    def test_max_events_guard(self):
        eng = Engine()

        def forever():
            eng.after(1.0, forever)

        eng.after(1.0, forever)
        eng.run(max_events=10)
        assert eng.events_fired == 10

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_step_fires_one(self):
        eng = Engine()
        fired = []
        eng.after(1.0, fired.append, 1)
        eng.after(2.0, fired.append, 2)
        assert eng.step() is True
        assert fired == [1]

    def test_pending_counts_queue(self):
        eng = Engine()
        eng.after(1.0, lambda: None)
        eng.after(2.0, lambda: None)
        assert eng.pending == 2

    def test_determinism(self):
        def run_once():
            eng = Engine()
            log = []
            for i in range(20):
                eng.after((i * 7) % 5 + 0.1, log.append, i)
            eng.run()
            return log

        assert run_once() == run_once()
