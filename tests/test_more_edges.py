"""Remaining edge coverage: pool policy flips, VM/file-cache parity,
disk scheduling under load, extent arithmetic, report rendering."""

import pytest

from conftest import make_cache, touch
from repro.core.acm import ACM
from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.core.opt import lru_misses


class TestPolicyFlips:
    def test_policy_change_midstream_flips_eviction_end(self):
        acm = ACM()
        cache = make_cache(nframes=3, policy=LRU_SP, acm=acm)
        acm.register(1)
        for b in range(3):
            touch(cache, 1, 1, b)
        # LRU (default): next miss evicts the oldest (block 0)
        touch(cache, 1, 1, 3)
        assert cache.peek(1, 0) is None
        # Switch to MRU: the next miss evicts the newest instead
        acm.set_policy(1, 0, "mru")
        touch(cache, 1, 1, 4)
        assert cache.peek(1, 4) is not None  # freshly loaded (never victim)
        assert cache.peek(1, 3) is None      # the previously-newest went

    def test_set_priority_then_policy_order_irrelevant(self):
        def run(order):
            acm = ACM()
            cache = make_cache(nframes=4, policy=LRU_SP, acm=acm)
            if order == "policy-first":
                acm.set_policy(1, 1, "mru")
                acm.set_priority(1, 7, 1)
            else:
                acm.set_priority(1, 7, 1)
                acm.set_policy(1, 1, "mru")
            hits = 0
            for i in range(40):
                if touch(cache, 1, 7, i % 6).hit:
                    hits += 1
            return hits

        assert run("policy-first") == run("prio-first")

    def test_negative_and_positive_priorities_interleave(self):
        acm = ACM()
        cache = make_cache(nframes=6, policy=LRU_SP, acm=acm)
        acm.set_priority(1, 1, -1)   # victim pool
        acm.set_priority(1, 2, 0)    # default
        acm.set_priority(1, 3, 2)    # protected
        for f in (1, 2, 3):
            touch(cache, 1, f, 0)
            touch(cache, 1, f, 1)
        touch(cache, 1, 9, 0)  # overflow: must come from priority -1
        remaining = {b.file_id for b in cache.blocks_owned_by(1)}
        assert 3 in remaining
        assert len(cache.blocks_of_file(1)) == 1  # one -1 block sacrificed


class TestVmFileCacheParity:
    def test_mru_gain_appears_in_both_substrates(self):
        """The same cyclic workload enjoys an MRU win under the exact-LRU
        file cache and (more coarsely) under the clock page pool."""
        from repro.vm import ClockPagePool

        trace = [b % 12 for b in range(120)]

        def file_cache(smart):
            acm = ACM()
            cache = make_cache(nframes=8, policy=LRU_SP, acm=acm)
            if smart:
                acm.register(1)
                acm.set_policy(1, 0, "mru")
            return sum(0 if touch(cache, 1, 1, b).hit else 1 for b in trace)

        def vm_pool(smart):
            pool = ClockPagePool(8, policy=LRU_SP)
            if smart:
                pool.acm.register(1)
                pool.acm.set_policy(1, 0, "mru")
            return sum(1 for b in trace if pool.access(1, 1, b)[0])

        assert file_cache(True) < file_cache(False)
        assert vm_pool(True) < vm_pool(False)

    def test_oblivious_clock_never_beats_exact_lru_by_much(self):
        from repro.vm import ClockPagePool

        trace = [(i * 5) % 17 for i in range(400)]
        pool = ClockPagePool(8, policy=GLOBAL_LRU)
        clock_faults = sum(1 for b in trace if pool.access(1, 1, b)[0])
        assert clock_faults >= lru_misses(trace, 8) * 0.9


class TestDiskSchedulingUnderLoad:
    def test_sstf_reduces_total_seek_time(self):
        from repro.disk.drive import DiskDrive
        from repro.disk.params import RZ56
        from repro.disk.scheduler import FCFSScheduler, SSTFScheduler
        from repro.sim.engine import Engine

        def run(scheduler_cls):
            eng = Engine()
            sched = scheduler_cls(RZ56) if scheduler_cls is SSTFScheduler else scheduler_cls()
            drive = DiskDrive(eng, RZ56, scheduler=sched)
            for i in range(60):
                drive.read((i * 7919) % RZ56.total_blocks, 1, lambda: None)
            eng.run()
            return eng.now

        assert run(SSTFScheduler) < run(FCFSScheduler)

    def test_clook_serves_everything(self):
        from repro.disk.drive import DiskDrive
        from repro.disk.params import RZ26
        from repro.disk.scheduler import CLookScheduler
        from repro.sim.engine import Engine

        eng = Engine()
        done = []
        drive = DiskDrive(eng, RZ26, scheduler=CLookScheduler(RZ26))
        for i in range(40):
            drive.read((i * 104729) % RZ26.total_blocks, 1, lambda i=i: done.append(i))
        eng.run()
        assert sorted(done) == list(range(40))


class TestExtentArithmetic:
    def test_many_small_extents(self):
        from repro.fs.filesystem import Extent, File

        extents = [Extent(i * 100, 3) for i in range(10)]
        f = File(1, "frag", "d0", nblocks=30, extents=extents)
        for blockno in range(30):
            lba = f.lba_of(blockno)
            assert lba == (blockno // 3) * 100 + blockno % 3

    def test_capacity_sums_extents(self):
        from repro.fs.filesystem import Extent, File

        f = File(1, "x", "d0", extents=[Extent(0, 5), Extent(50, 7)])
        assert f.capacity() == 12


class TestRenderingPaperRows:
    def test_fig4_includes_paper_rows_when_sizes_match(self):
        from repro.harness import report
        from repro.harness.experiments import SingleAppResult
        from repro.harness.paperdata import CACHE_SIZES_MB

        grid = {
            "din": {
                mb: SingleAppResult("din", mb, 100, 1000, 50, 500)
                for mb in CACHE_SIZES_MB
            }
        }
        text = report.render_fig4(grid)
        assert "paper-ratio" in text

    def test_fig4_omits_paper_rows_for_custom_sizes(self):
        from repro.harness import report
        from repro.harness.experiments import SingleAppResult

        grid = {"din": {1.0: SingleAppResult("din", 1.0, 10, 100, 5, 50)}}
        text = report.render_fig4(grid)
        assert "paper-ratio" not in text
