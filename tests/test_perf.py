"""repro.perf unit tests: profile schema, jsonable funnel, store, checkers.

The synthetic-profile pairs here pin the detector semantics the CI gate
relies on: a clear regression fails, within-noise jitter passes, an
improvement is labelled as such, and unit/machine mismatches become
INCOMPARABLE rather than silent nonsense.
"""

import dataclasses
import json
import math
import os
import time

import pytest

from repro.perf import (
    DEFAULT_FAIL_RATIO,
    DEFAULT_WARN_RATIO,
    FamilyCheck,
    GATED_FAMILIES,
    Machine,
    Metric,
    PerfFinding,
    Profile,
    ProfileStore,
    SCHEMA_VERSION,
    STATUS_DEGRADED,
    STATUS_IMPROVED,
    STATUS_INCOMPARABLE,
    STATUS_MISSING,
    STATUS_OK,
    STATUS_WARN,
    check_families,
    check_profiles,
    current_sha,
    jsonable,
    machine_fingerprint,
    validate_profile,
    worst_status,
)
from repro.perf.checkers import check_metric
from repro.perf.profile import HIGHER, LOWER


MACHINE = Machine(host="ci", cpu_count=4, python="3.12.0",
                  implementation="cpython", platform="Linux-test")
OTHER_MACHINE = Machine(host="laptop", cpu_count=8, python="3.12.0",
                        implementation="cpython", platform="Darwin-test")


def make_profile(family="micro_perf", sha="aaaa", machine=MACHINE, **metrics):
    profile = Profile(family=family, sha=sha, machine=machine)
    for name, spec in metrics.items():
        if isinstance(spec, dict):
            profile.add(name, **spec)
        else:
            profile.add(name, spec, "ops/s")
    return profile


# -- jsonable --------------------------------------------------------------


@dataclasses.dataclass
class Cell:
    io_ratio: float
    label: str


class FakeHistogram:
    count = 3
    sum = 2.5

    def cumulative(self):
        return [(0.1, 1), (1.0, 2), (float("inf"), 3)]


def test_jsonable_dataclass_and_tuple_keys():
    grid = {("din", 6.4): Cell(0.29, "best"), "plain": [1, 2]}
    out = jsonable(grid)
    assert out == {"din|6.4": {"io_ratio": 0.29, "label": "best"}, "plain": [1, 2]}
    json.dumps(out)  # truly JSON-serialisable


def test_jsonable_histogram_duck_type():
    out = jsonable({"latency": FakeHistogram()})
    assert out["latency"]["type"] == "histogram"
    assert out["latency"]["count"] == 3
    assert out["latency"]["buckets"] == [[0.1, 1], [1.0, 2], [None, 3]]
    json.dumps(out)


def test_jsonable_non_finite_floats_become_null():
    out = jsonable({"inf": float("inf"), "nan": float("nan"), "ok": 1.5, "none": None})
    assert out == {"inf": None, "nan": None, "ok": 1.5, "none": None}
    json.dumps(out)


def test_jsonable_fallback_repr():
    assert jsonable({1, 2}) == repr({1, 2}) or isinstance(jsonable({1, 2}), str)


# -- profile schema --------------------------------------------------------


def test_profile_round_trip():
    profile = make_profile(
        throughput={"value": 100.0, "unit": "ops/s", "samples": [98.0, 100.0],
                    "params": {"n": 10}},
        ratio={"value": 0.8, "unit": "ratio", "direction": LOWER},
    )
    data = profile.to_json()
    assert validate_profile(data) == []
    back = Profile.from_json(json.loads(json.dumps(data)))
    assert back.family == profile.family
    assert back.machine == profile.machine
    assert back.metrics["throughput"].samples == [98.0, 100.0]
    assert back.metrics["throughput"].params == {"n": 10}
    assert back.metrics["ratio"].direction == LOWER


def test_validate_profile_catches_schema_errors():
    bad = {
        "version": 99,
        "family": "",
        "sha": "x",
        "machine": "not-a-dict",
        "metrics": {
            "m1": {"value": True, "unit": 3, "direction": "sideways",
                   "samples": [1, "two"], "params": []},
            "m2": "not-an-object",
        },
    }
    errors = validate_profile(bad)
    text = "\n".join(errors)
    assert "schema version" in text
    assert "'family'" in text
    assert "machine" in text
    assert "'value'" in text and "'unit'" in text and "'direction'" in text
    assert "'samples'" in text and "'params'" in text
    assert "m2" in text
    with pytest.raises(ValueError):
        Profile.from_json(bad)


def test_validate_profile_rejects_non_dict():
    assert validate_profile([1, 2]) != []


def test_metric_best_is_direction_aware():
    assert Metric(90.0, "ops/s", HIGHER, samples=[80.0, 95.0]).best() == 95.0
    assert Metric(1.2, "s", LOWER, samples=[1.5, 1.1]).best() == 1.1
    assert Metric(42.0, "ops/s", HIGHER, samples=[]).best() == 42.0
    assert Metric(None, "ops/s", HIGHER).best() is None
    # non-finite samples are ignored by the noise guard
    assert Metric(50.0, "ops/s", HIGHER, samples=[float("nan")]).best() == 50.0


def test_machine_comparability_ignores_host():
    same_shape = Machine(host="elsewhere", cpu_count=4, python="3.12.0",
                         implementation="cpython", platform="Linux-test")
    assert MACHINE.comparable_with(same_shape)
    assert not MACHINE.comparable_with(OTHER_MACHINE)


def test_machine_fingerprint_shape():
    fp = machine_fingerprint()
    assert fp.cpu_count >= 1
    assert fp.python and fp.implementation and fp.platform
    assert fp.comparable_with(machine_fingerprint())


# -- checkers: synthetic pairs ---------------------------------------------


def check_pair(base_spec, cur_spec, check=None):
    base = Metric(**base_spec) if isinstance(base_spec, dict) else Metric(base_spec, "ops/s")
    cur = Metric(**cur_spec) if isinstance(cur_spec, dict) else Metric(cur_spec, "ops/s")
    return check_metric("fam", "m", base, cur, check or FamilyCheck())


def test_clear_regression_is_degraded():
    finding = check_pair(100.0, 80.0)  # 25% slower
    assert finding.status == STATUS_DEGRADED
    assert finding.slowdown == pytest.approx(1.25)
    assert "fail threshold" in finding.message


def test_warn_band_between_thresholds():
    finding = check_pair(100.0, 92.0)  # ~8.7% slower
    assert finding.status == STATUS_WARN
    assert DEFAULT_WARN_RATIO < finding.slowdown < DEFAULT_FAIL_RATIO


def test_within_noise_jitter_is_ok():
    finding = check_pair(
        {"value": 100.0, "unit": "ops/s"},
        # mean is 8% down, but the best sample is within 1%: best-of-N
        {"value": 92.0, "unit": "ops/s", "samples": [84.0, 99.2]},
    )
    assert finding.status == STATUS_OK
    assert finding.current == 99.2
    assert "best of 2" in finding.message


def test_improvement_is_labelled():
    finding = check_pair(100.0, 120.0)
    assert finding.status == STATUS_IMPROVED
    assert finding.slowdown < 1.0


def test_lower_is_better_direction():
    base = {"value": 1.0, "unit": "ratio", "direction": LOWER}
    assert check_pair(base, {"value": 1.3, "unit": "ratio", "direction": LOWER}).status \
        == STATUS_DEGRADED
    assert check_pair(base, {"value": 0.9, "unit": "ratio", "direction": LOWER}).status \
        == STATUS_IMPROVED


def test_unit_mismatch_is_incomparable():
    finding = check_pair(
        {"value": 100.0, "unit": "ops/s"},
        {"value": 100.0, "unit": "ms"},
    )
    assert finding.status == STATUS_INCOMPARABLE
    assert "unit mismatch" in finding.message


def test_direction_mismatch_is_incomparable():
    finding = check_pair(
        {"value": 1.0, "unit": "x", "direction": HIGHER},
        {"value": 1.0, "unit": "x", "direction": LOWER},
    )
    assert finding.status == STATUS_INCOMPARABLE


def test_null_and_non_positive_values_are_incomparable():
    assert check_pair({"value": None, "unit": "ops/s"}, 10.0).status == STATUS_INCOMPARABLE
    assert check_pair(10.0, {"value": None, "unit": "ops/s"}).status == STATUS_INCOMPARABLE
    assert check_pair(0.0, 10.0).status == STATUS_INCOMPARABLE


def test_custom_thresholds_respected():
    loose = FamilyCheck(warn_ratio=1.5, fail_ratio=2.0)
    assert check_pair(100.0, 80.0, loose).status == STATUS_OK
    assert check_pair(100.0, 60.0, loose).status == STATUS_WARN
    assert check_pair(100.0, 40.0, loose).status == STATUS_DEGRADED


def test_machine_mismatch_downgrades_whole_family():
    base = make_profile(machine=MACHINE, ops=100.0)
    cur = make_profile(machine=OTHER_MACHINE, ops=10.0)  # 10x slower but incomparable
    findings = check_profiles(base, cur)
    assert len(findings) == 1
    assert findings[0].metric == "*"
    assert findings[0].status == STATUS_INCOMPARABLE
    assert "machine fingerprint mismatch" in findings[0].message


def test_missing_metric_and_new_metric():
    base = make_profile(ops=100.0, gone=5.0)
    cur = make_profile(ops=100.0, brand_new=7.0)
    findings = {f.metric: f for f in check_profiles(base, cur)}
    assert findings["gone"].status == STATUS_MISSING
    assert findings["ops"].status == STATUS_OK
    assert findings["brand_new"].status == STATUS_OK
    assert "no baseline yet" in findings["brand_new"].message
    # gate mode hides un-gated extras and never reports current-only metrics
    gated = check_profiles(base, cur, FamilyCheck(metrics=("ops",)), gated_only=True)
    assert [f.metric for f in gated] == ["ops"]


def test_check_families_reports_absent_family():
    base = {"micro_perf": make_profile(ops=100.0)}
    findings = check_families(base, {}, GATED_FAMILIES)
    assert len(findings) == 1
    assert findings[0].family == "micro_perf"
    assert findings[0].status == STATUS_MISSING


def test_check_families_select_filter():
    base = {
        "micro_perf": make_profile(ops=100.0),
        "other": make_profile(family="other", ops=100.0),
    }
    findings = check_families(base, {}, GATED_FAMILIES, families=["other"])
    assert {f.family for f in findings} == {"other"}


def test_worst_status_ordering():
    def finding(status):
        return PerfFinding("f", "m", status, "")

    assert worst_status([]) == STATUS_OK
    assert worst_status([finding(STATUS_OK), finding(STATUS_IMPROVED)]) == STATUS_IMPROVED
    assert worst_status([finding(STATUS_WARN), finding(STATUS_MISSING)]) == STATUS_WARN
    assert worst_status(
        [finding(STATUS_WARN), finding(STATUS_DEGRADED), finding(STATUS_OK)]
    ) == STATUS_DEGRADED
    assert worst_status([finding("???")]) == STATUS_DEGRADED  # unknown = worst


def test_gated_families_registry_shape():
    assert set(GATED_FAMILIES) == {
        "micro_perf",
        "server_throughput",
        "cluster_scaling",
        "replication",
        "production_load",
    }
    for family, check in GATED_FAMILIES.items():
        assert check.metrics, family
        assert check.fail_ratio == DEFAULT_FAIL_RATIO


# -- store -----------------------------------------------------------------


def test_store_save_load_round_trip(tmp_path):
    store = ProfileStore(tmp_path / ".perf")
    profile = make_profile(sha="a" * 40, ops=123.4)
    path = store.save(profile)
    assert path == tmp_path / ".perf" / "profiles" / ("a" * 40) / "micro_perf.json"
    back = store.load("a" * 40, "micro_perf")
    assert back.metrics["ops"].value == 123.4
    assert store.families("a" * 40) == ["micro_perf"]
    assert store.load_errors("a" * 40, "micro_perf") == []
    assert store.record(profile) == path  # alias


def test_store_baseline_is_marked_reference(tmp_path):
    store = ProfileStore(tmp_path / ".perf")
    path = store.save_baseline(make_profile(sha="b" * 40, ops=50.0))
    assert path == tmp_path / ".perf" / "baseline" / "micro_perf.json"
    baseline = store.load("baseline", "micro_perf")
    assert baseline.reference is True
    assert baseline.sha == "b" * 40  # provenance kept


def test_store_shas_newest_first_baseline_last(tmp_path):
    store = ProfileStore(tmp_path / ".perf")
    store.save(make_profile(sha="old0", ops=1.0))
    store.save(make_profile(sha="new0", ops=2.0))
    store.save_baseline(make_profile(sha="old0", ops=1.0))
    old_dir = tmp_path / ".perf" / "profiles" / "old0" / "micro_perf.json"
    past = time.time() - 1000
    os.utime(old_dir, (past, past))
    assert store.shas() == ["new0", "old0", "baseline"]


def test_store_load_errors_on_corrupt_file(tmp_path):
    store = ProfileStore(tmp_path / ".perf")
    path = store.profile_path("dead", "micro_perf")
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    assert any("unreadable" in e for e in store.load_errors("dead", "micro_perf"))
    path.write_text(json.dumps({"version": SCHEMA_VERSION, "family": "micro_perf"}))
    assert store.load_errors("dead", "micro_perf") != []


def test_store_env_root_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PERF_DIR", str(tmp_path / "elsewhere"))
    store = ProfileStore()
    assert store.root == tmp_path / "elsewhere"
    assert store.repo_root == tmp_path


def test_current_sha_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PERF_SHA", "feedface")
    assert current_sha() == "feedface"
    monkeypatch.delenv("REPRO_PERF_SHA")
    sha = current_sha()
    assert sha == "workdir" or len(sha) == 40  # git or gitless fallback
