"""Placeholder-table lifecycle and quotas."""

import pytest

from repro.core.blocks import CacheBlock
from repro.core.placeholders import PlaceholderTable


def block(file_id=1, blockno=0, pid=1):
    return CacheBlock(file_id, blockno, owner_pid=pid)


class TestLifecycle:
    def test_add_and_contains(self):
        table = PlaceholderTable()
        kept = block()
        table.add((1, 5), kept, manager_pid=1)
        assert (1, 5) in table
        assert len(table) == 1
        assert table.created == 1

    def test_consume_returns_entry(self):
        table = PlaceholderTable()
        kept = block()
        table.add((1, 5), kept, manager_pid=7)
        entry = table.consume((1, 5))
        assert entry.kept is kept
        assert entry.manager_pid == 7
        assert (1, 5) not in table
        assert table.consumed == 1

    def test_consume_absent_returns_none(self):
        assert PlaceholderTable().consume((1, 5)) is None

    def test_consume_with_nonresident_kept_drops(self):
        table = PlaceholderTable()
        kept = block()
        table.add((1, 5), kept, manager_pid=1)
        kept.resident = False
        assert table.consume((1, 5)) is None
        assert (1, 5) not in table

    def test_readd_supersedes(self):
        table = PlaceholderTable()
        k1, k2 = block(blockno=1), block(blockno=2)
        table.add((1, 5), k1, manager_pid=1)
        table.add((1, 5), k2, manager_pid=1)
        assert len(table) == 1
        assert table.consume((1, 5)).kept is k2

    def test_supersede_counts_as_discarded(self):
        # Regression: the superseded entry used to vanish without being
        # counted, breaking created == consumed + discarded + live.
        table = PlaceholderTable()
        table.add((1, 5), block(blockno=1), manager_pid=1)
        table.add((1, 5), block(blockno=2), manager_pid=1)
        assert table.discarded == 1
        assert table.created == table.consumed + table.discarded + len(table)

    def test_clear_counts_as_discarded(self):
        table = PlaceholderTable()
        table.add((1, 5), block(), manager_pid=1)
        table.clear()
        assert table.discarded == 1
        assert table.created == table.consumed + table.discarded + len(table)

    def test_drop_for_missing(self):
        table = PlaceholderTable()
        table.add((1, 5), block(), manager_pid=1)
        assert table.drop_for_missing((1, 5)) is True
        assert table.drop_for_missing((1, 5)) is False
        assert len(table) == 0

    def test_drop_for_kept_removes_all_pointing(self):
        table = PlaceholderTable()
        kept = block()
        table.add((1, 5), kept, manager_pid=1)
        table.add((1, 6), kept, manager_pid=1)
        table.add((2, 0), block(2, 9), manager_pid=1)
        assert table.drop_for_kept(kept) == 2
        assert len(table) == 1
        assert (2, 0) in table

    def test_drop_for_kept_unknown_block(self):
        assert PlaceholderTable().drop_for_kept(block()) == 0

    def test_clear(self):
        table = PlaceholderTable()
        table.add((1, 5), block(), manager_pid=1)
        table.clear()
        assert len(table) == 0


class TestQuota:
    def test_per_manager_limit_evicts_oldest(self):
        table = PlaceholderTable(per_manager_limit=2)
        k = [block(blockno=i) for i in range(3)]
        table.add((1, 0), k[0], manager_pid=1)
        table.add((1, 1), k[1], manager_pid=1)
        table.add((1, 2), k[2], manager_pid=1)
        assert len(table) == 2
        assert (1, 0) not in table  # oldest discarded
        assert (1, 1) in table and (1, 2) in table
        assert table.discarded >= 1

    def test_limits_are_per_manager(self):
        table = PlaceholderTable(per_manager_limit=1)
        table.add((1, 0), block(blockno=0), manager_pid=1)
        table.add((2, 0), block(2, 0, pid=2), manager_pid=2)
        assert len(table) == 2

    def test_count_for(self):
        table = PlaceholderTable()
        table.add((1, 0), block(blockno=0), manager_pid=1)
        table.add((1, 1), block(blockno=1), manager_pid=1)
        assert table.count_for(1) == 2
        assert table.count_for(99) == 0

    def test_consume_decrements_count(self):
        table = PlaceholderTable()
        table.add((1, 0), block(), manager_pid=1)
        table.consume((1, 0))
        assert table.count_for(1) == 0

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            PlaceholderTable(per_manager_limit=0)

    def test_quota_eviction_cleans_reverse_index(self):
        table = PlaceholderTable(per_manager_limit=1)
        kept = block()
        table.add((1, 0), kept, manager_pid=1)
        table.add((1, 1), kept, manager_pid=1)  # evicts (1,0)
        # Dropping the kept block must only find the live entry.
        assert table.drop_for_kept(kept) == 1
        assert len(table) == 0
