"""Stream discipline of the command-line tools.

Data payloads (metrics expositions, JSON snapshots) belong on stdout as
one flushed block; human status lines belong on stderr and disappear
under ``--quiet``.  A regression here scrambles scripted pipelines like
``repro-accfc metrics --port N | promtool check metrics``.
"""

import sys

from repro.harness.cli import emit_payload, status_line


class RecordingStream:
    """A file-like stub that logs (name, event) tuples into a shared list."""

    def __init__(self, name, events):
        self.name = name
        self.events = events

    def write(self, text):
        self.events.append((self.name, "write", text))
        return len(text)

    def flush(self):
        self.events.append((self.name, "flush", None))


def test_emit_payload_drains_stderr_before_stdout(monkeypatch):
    events = []
    monkeypatch.setattr(sys, "stdout", RecordingStream("stdout", events))
    monkeypatch.setattr(sys, "stderr", RecordingStream("stderr", events))
    emit_payload("cache_hits_total 42")
    # stderr is flushed before a single byte lands on stdout, and the
    # payload itself ends flushed and newline-terminated.
    assert events[0] == ("stderr", "flush", None)
    writes = [e for e in events if e[1] == "write"]
    assert [name for name, _, _ in writes] == ["stdout", "stdout"]
    assert "".join(text for _, _, text in writes) == "cache_hits_total 42\n"
    assert events[-1] == ("stdout", "flush", None)


def test_emit_payload_keeps_existing_newline(capsys):
    emit_payload("line\n")
    assert capsys.readouterr().out == "line\n"


def test_status_line_goes_to_stderr(capsys):
    status_line("serving on :9999")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == "serving on :9999\n"


def test_status_line_quiet_suppresses(capsys):
    status_line("serving on :9999", quiet=True)
    captured = capsys.readouterr()
    assert captured.out == "" and captured.err == ""


def test_metrics_cli_has_quiet_flag(capsys):
    from repro.harness.cli import metrics_main

    # --help must document --quiet; argparse exits 0 after printing it.
    try:
        metrics_main(["--help"])
    except SystemExit as exc:
        assert exc.code == 0
    assert "--quiet" in capsys.readouterr().out


def test_serve_and_cluster_cli_have_quiet_flags(capsys):
    from repro.cluster.cli import cluster_main
    from repro.server.daemon import serve_main

    for entry in (serve_main, cluster_main):
        try:
            entry(["--help"])
        except SystemExit as exc:
            assert exc.code == 0
        assert "--quiet" in capsys.readouterr().out
