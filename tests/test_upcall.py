"""Upcall-based managers (the general interface the paper argued against)."""

import pytest

from conftest import make_cache, touch
from repro.core.allocation import GLOBAL_LRU, LRU_SP
from repro.core.blocks import CacheBlock
from repro.core.upcall import (
    LRUHandler,
    MRUHandler,
    PinningHandler,
    UpcallACM,
    UpcallHandler,
)
from repro.kernel.system import MachineConfig, System
from repro.workloads import Dinero


def upcall_cache(nframes=4, handler=None, pid=1, policy=LRU_SP):
    acm = UpcallACM()
    cache = make_cache(nframes=nframes, policy=policy, acm=acm)
    if handler is not None:
        acm.register_handler(pid, handler)
    return cache, acm


class TestHandlers:
    def test_mru_handler_tracks_and_evicts_mru(self):
        cache, acm = upcall_cache(nframes=3, handler=MRUHandler())
        for b in range(3):
            touch(cache, 1, 1, b)
        touch(cache, 1, 1, 3)  # MRU handler gives up block 2
        assert cache.peek(1, 2) is None
        assert cache.peek(1, 0) is not None

    def test_lru_handler_matches_oblivious(self):
        """An LRU handler makes the same decisions as no handler at all."""
        stream = [(1, 1, (i * 7) % 9) for i in range(120)]
        managed, acm = upcall_cache(nframes=4, handler=LRUHandler())
        plain = make_cache(nframes=4, policy=GLOBAL_LRU)
        a = [touch(managed, *ref).hit for ref in stream]
        b = [touch(plain, *ref).hit for ref in stream]
        assert a == b

    def test_pinning_handler_protects_file(self):
        cache, acm = upcall_cache(nframes=4, handler=PinningHandler({9}))
        touch(cache, 1, 9, 0)  # the pinned file
        for b in range(8):
            touch(cache, 1, 1, b)
        assert cache.peek(9, 0) is not None

    def test_pinning_handler_falls_back_when_all_pinned(self):
        cache, acm = upcall_cache(nframes=2, handler=PinningHandler({9}))
        touch(cache, 1, 9, 0)
        touch(cache, 1, 9, 1)
        touch(cache, 1, 9, 2)  # must evict a pinned block anyway
        assert cache.resident == 2

    def test_handler_tracks_resident_set_via_upcalls(self):
        handler = MRUHandler()
        cache, acm = upcall_cache(nframes=2, handler=handler)
        touch(cache, 1, 1, 0)
        touch(cache, 1, 1, 1)
        touch(cache, 1, 1, 2)
        resident = {b.id for b in cache.blocks_owned_by(1)}
        assert {b.id for b in handler.order} == resident

    def test_upcall_counter(self):
        cache, acm = upcall_cache(nframes=2, handler=MRUHandler())
        touch(cache, 1, 1, 0)
        touch(cache, 1, 1, 1)
        touch(cache, 1, 1, 2)
        # new_block x3 + accessed? (miss path: no accessed) + replace x1
        assert acm.upcalls >= 4


class TestSafety:
    class EvilHandler(UpcallHandler):
        """Returns garbage; the kernel must not trust it."""

        def __init__(self, answer):
            self.answer = answer

        def replace_block(self, candidate, missing_id):
            return self.answer

    def test_none_answer_falls_back_to_candidate(self):
        cache, acm = upcall_cache(nframes=2, handler=self.EvilHandler(None))
        for b in range(4):
            touch(cache, 1, 1, b)
        cache.check_invariants()

    def test_foreign_block_answer_rejected(self):
        foreign = CacheBlock(7, 7, owner_pid=99)
        cache, acm = upcall_cache(nframes=2, handler=self.EvilHandler(foreign))
        for b in range(4):
            touch(cache, 1, 1, b)
        cache.check_invariants()

    def test_nonresident_answer_rejected(self):
        stale = CacheBlock(1, 0, owner_pid=1)
        stale.resident = False
        cache, acm = upcall_cache(nframes=2, handler=self.EvilHandler(stale))
        for b in range(4):
            touch(cache, 1, 1, b)
        cache.check_invariants()

    def test_directive_and_upcall_processes_coexist(self):
        acm = UpcallACM()
        cache = make_cache(nframes=6, policy=LRU_SP, acm=acm)
        acm.register_handler(1, MRUHandler())
        acm.register(2)
        acm.set_policy(2, 0, "mru")
        for i in range(30):
            touch(cache, 1, 1, i % 5)
            touch(cache, 2, 2, i % 5)
            cache.check_invariants()

    def test_ownership_transfer_between_handler_and_manager(self):
        acm = UpcallACM()
        cache = make_cache(nframes=6, policy=LRU_SP, acm=acm)
        handler = MRUHandler()
        acm.register_handler(1, handler)
        acm.register(2)
        touch(cache, 1, 5, 0)
        touch(cache, 2, 5, 0)  # pid 2 takes the block over
        block = cache.peek(5, 0)
        assert block.owner_pid == 2
        assert block not in handler.order
        assert block in acm.managers[2].pools[0].blocks
        touch(cache, 1, 5, 0)  # and back again
        assert cache.peek(5, 0).owner_pid == 1
        assert cache.peek(5, 0) in handler.order

    def test_register_handler_adopts_existing_blocks(self):
        acm = UpcallACM()
        cache = make_cache(nframes=6, policy=LRU_SP, acm=acm)
        touch(cache, 1, 1, 0)
        handler = MRUHandler()
        acm.register_handler(1, handler)
        assert len(handler.order) == 1


class TestKernelIntegration:
    def _run(self, use_upcalls: bool):
        acm = UpcallACM() if use_upcalls else None
        system = System(MachineConfig(cache_mb=1.0, policy=LRU_SP), acm=acm)
        Dinero(smart=not use_upcalls, trace_blocks=200, passes=3,
               cpu_per_block=0.002).spawn(system)
        if use_upcalls:
            system.acm.register_handler(1, MRUHandler())
        return system.run().proc("din")

    def test_same_decisions_either_interface(self):
        directives = self._run(use_upcalls=False)
        upcalls = self._run(use_upcalls=True)
        assert directives.block_ios == upcalls.block_ios

    def test_upcalls_cost_elapsed_time(self):
        directives = self._run(use_upcalls=False)
        upcalls = self._run(use_upcalls=True)
        assert upcalls.elapsed > directives.elapsed * 1.02
